// Package simnet is a deterministic discrete-event network simulator:
// a virtual-time scheduler, plus link transmission/queueing/failure
// modelling over a topology.Graph. It replaces the paper's Mininet
// emulation substrate (see DESIGN.md §2): what the KAR experiments
// measure — serialization and queueing delays, loss at failed links,
// path changes — are exactly the first-order effects modelled here,
// with reproducible seeds instead of OS scheduling jitter.
package simnet

import (
	"time"

	"repro/internal/packet"
	"repro/internal/telemetry"
)

// Event kinds. The two per-packet events of the transport hot path
// (queue-slot release and delivery) are encoded as typed fields on the
// event struct rather than closures, so steady-state scheduling never
// allocates; evtFunc remains for control-plane and user callbacks.
const (
	evtFunc    = iota // fn()
	evtDequeue        // ds.queued--
	evtDeliver        // in-flight check, then deliver pkt over line/dir
)

// event is one scheduled occurrence. Exactly one kind-dependent field
// group is meaningful; the struct is stored by value in the heap slice
// so scheduling moves no separate allocation.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreak for equal times

	kind uint8
	dir  uint8 // evtDeliver: line direction index

	fn      func()         // evtFunc
	ds      *dirState      // evtDequeue
	line    *Line          // evtDeliver
	pkt     *packet.Packet // evtDeliver
	txStart time.Duration  // evtDeliver: serialization start (in-flight kill check)
}

// before is the heap order: time, then scheduling order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Scheduler is a virtual-time event loop. Events at equal times run in
// scheduling (FIFO) order, making runs fully deterministic. Not safe
// for concurrent use: one scheduler per simulated world, many worlds
// in parallel.
//
// The queue is a 4-ary min-heap in a plain slice: no interface boxing
// on push/pop, shallower sift paths than a binary heap, and the
// backing array is reused across the run, so steady-state scheduling
// performs zero allocations.
type Scheduler struct {
	now    time.Duration
	events []event
	seq    uint64

	// cPast counts events scheduled for an already-elapsed virtual
	// time (clamped to "now"); nil until a Network attaches one.
	cPast *telemetry.Counter
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// SetPastEventCounter attaches the counter bumped whenever an event is
// scheduled in the virtual past. Nil (the default) disables counting.
func (s *Scheduler) SetPastEventCounter(c *telemetry.Counter) { s.cPast = c }

// At schedules fn at absolute virtual time t; times in the past run
// "now" (next step) and are counted on the past-event counter.
func (s *Scheduler) At(t time.Duration, fn func()) {
	s.post(t, event{kind: evtFunc, fn: fn})
}

// After schedules fn d from now.
func (s *Scheduler) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// post clamps t, stamps the FIFO sequence and pushes e.
func (s *Scheduler) post(t time.Duration, e event) {
	if t < s.now {
		t = s.now
		if s.cPast != nil {
			s.cPast.Inc()
		}
	}
	e.at = t
	s.seq++
	e.seq = s.seq
	s.push(e)
}

// push appends e and sifts it up the 4-ary heap.
func (s *Scheduler) push(e event) {
	q := append(s.events, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q[i].before(&q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	s.events = q
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the heap never pins dead packets or closures.
func (s *Scheduler) pop() event {
	q := s.events
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = event{}
	q = q[:last]
	s.events = q
	i := 0
	for {
		min := i
		c := 4*i + 1
		end := c + 4
		if end > len(q) {
			end = len(q)
		}
		for ; c < end; c++ {
			if q[c].before(&q[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// dispatch runs one event at the already-advanced clock.
func (s *Scheduler) dispatch(e *event) {
	switch e.kind {
	case evtFunc:
		e.fn()
	case evtDequeue:
		e.ds.queued--
	case evtDeliver:
		e.line.finishTransit(e.pkt, int(e.dir), e.txStart)
	}
}

// Step runs the earliest pending event; it reports false when none
// remain.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.pop()
	s.now = e.at
	s.dispatch(&e)
	return true
}

// RunUntil processes every event scheduled at or before t, then
// advances the clock to t.
func (s *Scheduler) RunUntil(t time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= t {
		e := s.pop()
		s.now = e.at
		s.dispatch(&e)
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of scheduled events (for tests and
// leak-detection assertions).
func (s *Scheduler) Pending() int { return len(s.events) }
