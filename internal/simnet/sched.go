// Package simnet is a deterministic discrete-event network simulator:
// a virtual-time scheduler, plus link transmission/queueing/failure
// modelling over a topology.Graph. It replaces the paper's Mininet
// emulation substrate (see DESIGN.md §2): what the KAR experiments
// measure — serialization and queueing delays, loss at failed links,
// path changes — are exactly the first-order effects modelled here,
// with reproducible seeds instead of OS scheduling jitter.
package simnet

import (
	"container/heap"
	"time"
)

// Scheduler is a virtual-time event loop. Events at equal times run in
// scheduling (FIFO) order, making runs fully deterministic. Not safe
// for concurrent use: one scheduler per simulated world, many worlds
// in parallel.
type Scheduler struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	old[len(old)-1] = event{}
	*h = old[:len(old)-1]
	return e
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t; times in the past run
// "now" (next step).
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d from now.
func (s *Scheduler) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Step runs the earliest pending event; it reports false when none
// remain.
func (s *Scheduler) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil processes every event scheduled at or before t, then
// advances the clock to t.
func (s *Scheduler) RunUntil(t time.Duration) {
	for s.events.Len() > 0 && s.events[0].at <= t {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of scheduled events (for tests and
// leak-detection assertions).
func (s *Scheduler) Pending() int { return s.events.Len() }
