package simnet

import (
	"time"

	"repro/internal/packet"
	"repro/internal/rns"
)

// This file is the batched data plane: packet trains. In scalar mode
// every packet on a link costs two heap events (queue-slot release and
// delivery). In batch mode (the default) each link direction instead
// keeps one train — an ordered slice of undelivered members — and the
// scheduler holds a second, much smaller priority lane of active
// trains keyed by their next member's (at, seq). The main loop always
// dispatches the global (at, seq) minimum across both lanes, so a
// batched run replays the scalar event order exactly; what changes is
// the cost: advancing a train is one shallow sift among O(active
// links) trains instead of a push/pop pair in a heap of O(in-flight
// packets) events, queue releases become a lazily drained ring with no
// events at all, and a switch-bound train resolves its members' output
// ports with one amortized rns.ReduceBatch instead of a per-packet
// policy call.
//
// Exactness is by construction, not by luck:
//
//   - Sequence parity: enqueueBatch allocates one seq for the implicit
//     queue release and one for the member at exactly the points the
//     scalar path posts its evtDequeue/evtDeliver, so every other
//     event's tie-break key is identical in both modes.
//   - Queue occupancy: the only reader of a direction's queue depth is
//     the tail-drop check in enqueue. The ring drains entries whose
//     (release time, seq) precedes the scheduler's current (now,
//     curSeq) — precisely the releases scalar mode would already have
//     popped.
//   - Fault semantics: link failures, repairs, detections and gray
//     windows are scheduler events; because the loop interleaves lanes
//     in global order, they split trains for free. Each member re-runs
//     the scalar in-flight kill check at its own delivery instant, and
//     members delivered while an impairment is installed peel onto the
//     scalar transit path so RNG draws happen in the scalar order.
//   - Peel-outs: sampled packets take the full scalar switch pipeline
//     (flight-recorder hooks), corrupted packets invalidate only their
//     own precomputed residue, and non-batch handlers (edges) receive
//     plain HandlePacket calls.

// BatchHandler is a Handler that can accept batched deliveries with a
// precomputed port residue. The simulated switch implements it; edges
// do not (their trains skip residue precomputation entirely).
type BatchHandler interface {
	Handler
	// BatchReducer exposes the handler's modulus reduction for train-
	// side residue precomputation; ok is false when the handler cannot
	// accept precomputed residues (modulus wider than uint16).
	BatchReducer() (rns.Reducer, bool)
	// HandleBatchPacket is HandlePacket with the route-ID reduction
	// already done: residue == RouteID mod the handler's modulus.
	HandleBatchPacket(pkt *packet.Packet, inPort int, residue uint16)
}

// trainMember is one queued transmission: the packet, its delivery key
// (at, key), the key of its implicit queue release (deqKey; its time
// is at minus the link delay), the serialization start for the
// in-flight kill check, and the precomputed port residue.
type trainMember struct {
	at      time.Duration
	key     uint64
	deqKey  uint64
	txStart time.Duration
	pkt     *packet.Packet
	res     uint16
	resOK   bool
}

// train is one link direction's pending transmissions. members[head:]
// are undelivered; members[deqHead:] still hold their queue slot;
// members[:resLen] have residues. The scheduler's train lane holds a
// pointer while hpos ≥ 0.
type train struct {
	line *Line
	dir  uint8
	hpos int32 // index in Scheduler.trains; -1 when inactive

	// keyAt/keyOrd mirror members[head]'s (at, key) while the train is
	// active, so heap comparisons touch only the train struct instead
	// of chasing the members slice.
	keyAt  time.Duration
	keyOrd uint64

	head    int // next member to deliver
	deqHead int // next queue slot to release (lazy, ≤ delivery order)
	resLen  int // members with computed residues
	members []trainMember

	// Cached receiving endpoint (resolved on first use; handlers are
	// bound before traffic starts).
	h        Handler
	bh       BatchHandler
	red      rns.Reducer
	resValid bool

	// Scratch for gather → ReduceBatch → scatter.
	ids []rns.RouteID
	out []uint16
}

// pendingQueue returns the occupied queue slots (after a drain).
func (tr *train) pendingQueue() int { return len(tr.members) - tr.deqHead }

// reset empties a train whose members are all delivered; endpoint
// caches survive (the topology is static).
func (tr *train) reset() {
	tr.members = tr.members[:0]
	tr.head, tr.deqHead, tr.resLen = 0, 0, 0
}

// resolveEndpoint caches the receiving handler and, when it accepts
// batched deliveries, its reducer. A nil handler is not latched:
// delivery falls back to Network.Deliver's fresh lookup (and its
// no-port drop), matching scalar mode for late-bound handlers.
func (tr *train) resolveEndpoint() {
	ds := &tr.line.dirs[tr.dir]
	h, ok := tr.line.net.handlers[ds.dst]
	if !ok {
		return
	}
	tr.h = h
	if bh, ok := h.(BatchHandler); ok {
		if red, rok := bh.BatchReducer(); rok {
			tr.bh, tr.red, tr.resValid = bh, red, true
		}
	}
}

// extendResidues computes residues for every member past resLen with
// one ReduceBatch call — the word-parallel amortization: it runs once
// per train-load, not once per packet, regardless of how deliveries
// interleave with other links' traffic.
func (tr *train) extendResidues() {
	if tr.h == nil {
		tr.resolveEndpoint()
	}
	n := len(tr.members)
	if !tr.resValid {
		tr.resLen = n
		return
	}
	need := n - tr.resLen
	if cap(tr.ids) < need {
		tr.ids = make([]rns.RouteID, need, need*2)
		tr.out = make([]uint16, need, need*2)
	}
	ids, out := tr.ids[:need], tr.out[:need]
	for i := 0; i < need; i++ {
		ids[i] = tr.members[tr.resLen+i].pkt.RouteID
	}
	tr.red.ReduceBatch(ids, out)
	for i := 0; i < need; i++ {
		tr.members[tr.resLen+i].res = out[i]
		tr.members[tr.resLen+i].resOK = true
	}
	tr.resLen = n
}

// --- Scheduler train lane -------------------------------------------------

// trainBefore is the lane's heap order: the trains' next members'
// (at, key), via the cached copies.
func trainBefore(a, b *train) bool {
	if a.keyAt != b.keyAt {
		return a.keyAt < b.keyAt
	}
	return a.keyOrd < b.keyOrd
}

// trainPush activates a train (first member just appended).
func (s *Scheduler) trainPush(tr *train) {
	m := &tr.members[tr.head]
	tr.keyAt, tr.keyOrd = m.at, m.key
	s.trains = append(s.trains, tr)
	i := len(s.trains) - 1
	tr.hpos = int32(i)
	for i > 0 {
		p := (i - 1) / 4
		if !trainBefore(s.trains[i], s.trains[p]) {
			break
		}
		s.trains[i], s.trains[p] = s.trains[p], s.trains[i]
		s.trains[i].hpos, s.trains[p].hpos = int32(i), int32(p)
		i = p
	}
}

// trainSiftDown restores heap order after the root's key increased
// (its head member advanced).
func (s *Scheduler) trainSiftDown() {
	q := s.trains
	i := 0
	for {
		min := i
		c := 4*i + 1
		end := c + 4
		if end > len(q) {
			end = len(q)
		}
		for ; c < end; c++ {
			if trainBefore(q[c], q[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		q[i].hpos, q[min].hpos = int32(i), int32(min)
		i = min
	}
}

// trainPopTop deactivates the root train (no members left).
func (s *Scheduler) trainPopTop() {
	q := s.trains
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[0].hpos = 0
	q[last] = nil
	s.trains = q[:last]
	top.hpos = -1
	if last > 0 {
		s.trainSiftDown()
	}
}

// stepTrain delivers the root train's next member: advance the clock
// and curKey to the member's key, fix the lane, then hand the packet
// to the line — mirroring pop-then-dispatch so handlers may freely
// enqueue more traffic (including onto this train).
func (s *Scheduler) stepTrain() {
	tr := s.trains[0]
	if tr.resLen <= tr.head {
		tr.extendResidues()
	}
	m := tr.members[tr.head]
	tr.members[tr.head].pkt = nil // no stale pin until reset/compact
	tr.head++
	s.trainMembers--
	if tr.head == len(tr.members) {
		s.trainPopTop()
		tr.reset()
	} else {
		next := &tr.members[tr.head]
		tr.keyAt, tr.keyOrd = next.at, next.key
		s.trainSiftDown()
	}
	s.now = m.at
	s.curKey = m.key
	tr.line.deliverMember(tr, &m)
}

// --- Line-side train operations -------------------------------------------

// drainDeq releases queue slots whose implicit dequeue — (release
// time, key) — precedes the owning lane's current dispatch position,
// exactly the evtDequeue events scalar mode would already have popped.
func (l *Line) drainDeq(tr *train, now time.Duration, cur uint64) {
	for tr.deqHead < len(tr.members) {
		m := &tr.members[tr.deqHead]
		done := m.at - l.delay
		if done < now || (done == now && m.deqKey < cur) {
			tr.deqHead++
			continue
		}
		break
	}
}

// compact reclaims the delivered prefix once it dominates the slice,
// so a continuously busy train does not grow without bound. Member
// order is preserved and head re-bases to 0, so the train's heap key
// (members[head]) is unchanged.
func (tr *train) compact() {
	if tr.head < 256 || tr.head*2 < len(tr.members) {
		return
	}
	n := copy(tr.members, tr.members[tr.head:])
	tr.members = tr.members[:n]
	tr.deqHead -= tr.head
	tr.resLen -= tr.head
	if tr.deqHead < 0 {
		tr.deqHead = 0
	}
	if tr.resLen < 0 {
		tr.resLen = 0
	}
	tr.head = 0
}

// enqueueBatch is the batch-mode tail of Send/enqueue: stamp the
// member's keys at the exact points scalar mode posts its two events,
// append, and activate the train if idle. An active train's heap key
// is its head member, which an append never changes.
func (n *Network) enqueueBatch(line *Line, dir int, pkt *packet.Packet, done, txStart time.Duration) {
	ds := &line.dirs[dir]
	tr := &ds.train
	deqKey := ds.lane.allocKey(ds.ent)
	key := ds.lane.allocKey(ds.ent)
	tr.members = append(tr.members, trainMember{
		at: done + line.delay, key: key, deqKey: deqKey, txStart: txStart, pkt: pkt,
	})
	ds.lane.trainMembers++
	if tr.hpos < 0 {
		ds.lane.trainPush(tr)
	}
}

// deliverMember completes one member's transit: the scalar in-flight
// kill check at the member's own delivery instant, the gray-impairment
// peel-out (scalar RNG draw order), then delivery to the cached
// endpoint — the batched fast lane when the handler takes residues,
// the plain handler call otherwise.
func (l *Line) deliverMember(tr *train, m *trainMember) {
	ds := &l.dirs[tr.dir]
	pkt := m.pkt
	if l.downRefs > 0 || (l.everDown && l.lastDownAt >= m.txStart) {
		ds.inFlightDrops.Inc()
		l.net.Drop(pkt, DropInFlight, l.link.Name())
		return
	}
	resOK := m.resOK
	if imp := l.imp; imp != nil {
		r := imp.Rand.Float64()
		switch {
		case r < imp.DropProb:
			l.cGrayDrops.Inc()
			l.net.Drop(pkt, DropGray, l.link.Name())
			return
		case r < imp.DropProb+imp.CorruptProb:
			if !l.corrupt(pkt, imp.Rand) {
				return // gray-dropped (and released) inside corrupt
			}
			resOK = false // route ID changed under the residue
		}
	}
	if tr.h == nil {
		tr.resolveEndpoint()
		if tr.h == nil {
			l.net.Deliver(pkt, ds.dst, ds.dstPort) // unbound: scalar no-port drop
			return
		}
	}
	n := l.net
	pkt.Hops++
	n.dDelivered.Inc()
	if n.deliverHook != nil {
		n.deliverHook(pkt, ds.dst, ds.dstPort)
	}
	if tr.bh != nil && resOK {
		tr.bh.HandleBatchPacket(pkt, ds.dstPort, m.res)
		return
	}
	tr.h.HandlePacket(pkt, ds.dstPort)
}
