package simnet

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/rns"
	"repro/internal/topology"
)

// The sharded engine's contract is byte-identity: the same seed and
// the same injection schedule must produce the same deliveries, the
// same arrival instants and the same metric dump for every shard
// count, every worker interleaving, and both data planes. These tests
// pin that contract on a topology small enough to reason about by
// hand: a six-node line
//
//	E0 — C1 — C2 — C3 — C4 — E1
//
// whose middle links have distinct propagation delays, so cut-link
// sets (and therefore lookahead windows) differ per shard count.

// lineRelay forwards along the line: whatever arrives on one port
// leaves on the other. Supports traffic in both directions, so
// cross-shard outboxes are exercised both ways.
type lineRelay struct {
	n    *Network
	node *topology.Node
}

func (r *lineRelay) HandlePacket(pkt *packet.Packet, inPort int) {
	out := 0
	if inPort == 0 {
		out = 1
	}
	r.n.Send(r.node, out, pkt)
}

// laneSink records deliveries with the owning lane's clock — the only
// clock a handler may read in a sharded world.
type laneSink struct {
	clk  Clock
	seqs []uint64
	ats  []time.Duration
}

func (s *laneSink) HandlePacket(pkt *packet.Packet, inPort int) {
	s.seqs = append(s.seqs, pkt.Seq)
	s.ats = append(s.ats, s.clk.Now())
}

type shardChain struct {
	n      *Network
	e0, e1 *topology.Node
	cut    *topology.Link // C2—C3: the lone cut link at shards=2
	s0, s1 *laneSink
}

func newShardChain(t *testing.T, shards int, scalar bool) *shardChain {
	t.Helper()
	g := topology.New("shardchain")
	if _, err := g.AddEdge("E0"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C1", "C2", "C3", "C4"} {
		if _, err := g.AddCore(name, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddEdge("E1"); err != nil {
		t.Fatal(err)
	}
	type hop struct {
		a, b  string
		delay time.Duration
	}
	hops := []hop{
		{"E0", "C1", 200 * time.Microsecond},
		{"C1", "C2", 500 * time.Microsecond},
		{"C2", "C3", 300 * time.Microsecond},
		{"C3", "C4", 400 * time.Microsecond},
		{"C4", "E1", 250 * time.Microsecond},
	}
	var cut *topology.Link
	for _, h := range hops {
		l, err := g.Connect(h.a, h.b,
			topology.WithRateMbps(100),
			topology.WithDelay(h.delay),
			topology.WithQueuePackets(32))
		if err != nil {
			t.Fatal(err)
		}
		if h.a == "C2" {
			cut = l
		}
	}
	opts := []Option{WithShards(shards)}
	if scalar {
		opts = append(opts, WithScalarDataPlane())
	}
	n := New(g, opts...)
	w := &shardChain{n: n, cut: cut}
	w.e0, _ = g.Node("E0")
	w.e1, _ = g.Node("E1")
	for _, name := range []string{"C1", "C2", "C3", "C4"} {
		c, _ := g.Node(name)
		n.Bind(c, &lineRelay{n: n, node: c})
	}
	w.s0 = &laneSink{clk: n.ClockOf(w.e0)}
	w.s1 = &laneSink{clk: n.ClockOf(w.e1)}
	n.Bind(w.e0, w.s0)
	n.Bind(w.e1, w.s1)
	return w
}

// burst schedules k back-to-back sends from node at t via the control
// plane — the injection style every experiment and fault hook uses,
// which dispatches on the control lane even when the node's data lane
// is elsewhere.
func (w *shardChain) burst(node *topology.Node, t time.Duration, firstSeq uint64, k int) {
	w.n.Scheduler().At(t, func() {
		for i := 0; i < k; i++ {
			w.n.Send(node, 0, &packet.Packet{
				Size:    600,
				TTL:     16,
				Seq:     firstSeq + uint64(i),
				RouteID: rns.RouteIDFromUint64(0x5AD_0000 + firstSeq + uint64(i)),
			})
		}
	})
}

type chainRun struct {
	seq0, seq1 []uint64
	at0, at1   []time.Duration
	dump       string
}

// driveChain runs the canonical injection schedule: control-plane
// bursts from both ends, lane-local timer sends, a mid-run injection
// posted between two RunUntil segments, and (optionally) a failure
// window on the C2—C3 cut link.
func driveChain(t *testing.T, shards int, scalar, fail bool) chainRun {
	t.Helper()
	w := newShardChain(t, shards, scalar)
	w.burst(w.e0, 0, 100, 8)
	w.burst(w.e1, 700*time.Microsecond, 300, 5)
	// Lane-local timer: the shard-safe way for traffic generators.
	w.n.ClockOf(w.e0).At(300*time.Microsecond, func() {
		for i := uint64(0); i < 4; i++ {
			w.n.Send(w.e0, 0, &packet.Packet{Size: 600, TTL: 16, Seq: 200 + i})
		}
	})
	// Control-plane injection while data packets are mid-flight: the
	// control clock is ahead of the idle edge lane here, so a stale
	// lane clock would serialize these too early and diverge.
	w.burst(w.e0, 1500*time.Microsecond, 400, 6)
	if fail {
		w.n.ScheduleFailure(w.cut, 800*time.Microsecond, 600*time.Microsecond)
	}
	w.n.RunUntil(2 * time.Millisecond)
	// Inject more after a partial run: lanes were parked at 2ms.
	w.burst(w.e1, 2200*time.Microsecond, 500, 3)
	w.burst(w.e0, 2500*time.Microsecond, 600, 4)
	w.n.RunUntil(10 * time.Millisecond)
	var buf bytes.Buffer
	if err := w.n.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return chainRun{
		seq0: w.s0.seqs, seq1: w.s1.seqs,
		at0: w.s0.ats, at1: w.s1.ats,
		dump: buf.String(),
	}
}

func checkRunsEqual(t *testing.T, name string, want, got chainRun) {
	t.Helper()
	if !reflect.DeepEqual(want.seq0, got.seq0) || !reflect.DeepEqual(want.seq1, got.seq1) {
		t.Errorf("%s: delivery order diverged\n  E0 want %v got %v\n  E1 want %v got %v",
			name, want.seq0, got.seq0, want.seq1, got.seq1)
	}
	if !reflect.DeepEqual(want.at0, got.at0) || !reflect.DeepEqual(want.at1, got.at1) {
		t.Errorf("%s: arrival instants diverged", name)
	}
	if want.dump != got.dump {
		t.Errorf("%s: metric dump diverged from 1-shard reference", name)
	}
}

// TestShardDeterminismChain is the headline byte-identity gate: every
// shard count and both data planes must replay the 1-shard batched
// run exactly — deliveries, arrival times, metric dump.
func TestShardDeterminismChain(t *testing.T) {
	ref := driveChain(t, 1, false, false)
	if len(ref.seq0) == 0 || len(ref.seq1) == 0 {
		t.Fatalf("reference run delivered nothing (E0 %d, E1 %d)", len(ref.seq0), len(ref.seq1))
	}
	for _, tc := range []struct {
		name   string
		shards int
		scalar bool
	}{
		{"shards1-scalar", 1, true},
		{"shards2", 2, false},
		{"shards2-scalar", 2, true},
		{"shards4", 4, false},
		{"shards4-scalar", 4, true},
	} {
		checkRunsEqual(t, tc.name, ref, driveChain(t, tc.shards, tc.scalar, false))
	}
}

// TestShardDeterminismCutFailure replays the schedule with a failure
// window on the cut link itself: link state flips are control events,
// and windows must never span them.
func TestShardDeterminismCutFailure(t *testing.T) {
	ref := driveChain(t, 1, false, true)
	clean := driveChain(t, 1, false, false)
	if reflect.DeepEqual(ref.seq1, clean.seq1) && reflect.DeepEqual(ref.seq0, clean.seq0) {
		t.Fatalf("failure window changed nothing — schedule does not exercise the cut link")
	}
	for _, shards := range []int{2, 4} {
		got := driveChain(t, shards, false, true)
		checkRunsEqual(t, "fail-shards", ref, got)
	}
}

// TestShardSerialMatchesParallel pins that the serialized global-merge
// driver (forced by any total-order observer, here a deliver hook) and
// the parallel window driver produce identical runs.
func TestShardSerialMatchesParallel(t *testing.T) {
	parallel := driveChain(t, 4, false, false)

	w := newShardChain(t, 4, false)
	delivered := 0
	w.n.SetDeliverHook(func(pkt *packet.Packet, at *topology.Node, inPort int) { delivered++ })
	if w.n.parallelOK() {
		t.Fatal("deliver hook should force the serialized driver")
	}
	w.burst(w.e0, 0, 100, 8)
	w.burst(w.e1, 700*time.Microsecond, 300, 5)
	w.n.ClockOf(w.e0).At(300*time.Microsecond, func() {
		for i := uint64(0); i < 4; i++ {
			w.n.Send(w.e0, 0, &packet.Packet{Size: 600, TTL: 16, Seq: 200 + i})
		}
	})
	w.burst(w.e0, 1500*time.Microsecond, 400, 6)
	w.n.RunUntil(2 * time.Millisecond)
	w.burst(w.e1, 2200*time.Microsecond, 500, 3)
	w.burst(w.e0, 2500*time.Microsecond, 600, 4)
	w.n.RunUntil(10 * time.Millisecond)

	serial := chainRun{seq0: w.s0.seqs, seq1: w.s1.seqs, at0: w.s0.ats, at1: w.s1.ats}
	var buf bytes.Buffer
	if err := w.n.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	serial.dump = buf.String()
	checkRunsEqual(t, "serial-vs-parallel", parallel, serial)
	// The hook sees every per-node delivery, relay hops included, so
	// it must count at least the end-to-end deliveries.
	if delivered < len(serial.seq0)+len(serial.seq1) {
		t.Errorf("deliver hook saw %d packets, sinks saw %d", delivered, len(serial.seq0)+len(serial.seq1))
	}
}

// TestShardLookahead checks the conservative window bound: the minimum
// propagation delay over cut links, which depends on where the
// partition falls.
func TestShardLookahead(t *testing.T) {
	if w := newShardChain(t, 1, false); w.n.Lookahead() != 0 {
		t.Errorf("1 shard: lookahead = %v, want 0 (no cut links)", w.n.Lookahead())
	}
	// shards=2: cores split {C1,C2} | {C3,C4}; only C2—C3 (300µs) cut.
	if w := newShardChain(t, 2, false); w.n.Lookahead() != 300*time.Microsecond {
		t.Errorf("2 shards: lookahead = %v, want 300µs", w.n.Lookahead())
	}
	// shards=4: every core its own region; all three inter-core links
	// cut, min delay still C2—C3.
	if w := newShardChain(t, 4, false); w.n.Lookahead() != 300*time.Microsecond {
		t.Errorf("4 shards: lookahead = %v, want 300µs", w.n.Lookahead())
	}
}

// TestShardCountClamped: the shard count never exceeds the number of
// core nodes, and nonpositive values mean the legacy 1-lane world.
func TestShardCountClamped(t *testing.T) {
	if w := newShardChain(t, 16, false); w.n.Shards() != 4 {
		t.Errorf("Shards() = %d, want clamp to 4 cores", w.n.Shards())
	}
	if w := newShardChain(t, 0, false); w.n.Shards() != 1 {
		t.Errorf("Shards() = %d, want 1", w.n.Shards())
	}
	if w := newShardChain(t, 2, false); w.n.Shards() != 2 {
		t.Errorf("Shards() = %d, want 2", w.n.Shards())
	}
}

// TestWindowDenyPostPanics: posting to the control scheduler from
// inside a parallel window is a determinism bug, and the engine turns
// it into a loud panic instead of a silent race.
func TestWindowDenyPostPanics(t *testing.T) {
	w := newShardChain(t, 2, false)
	w.n.sched.denyPost = true
	defer func() {
		if recover() == nil {
			t.Fatal("At on a denyPost scheduler should panic")
		}
	}()
	w.n.Scheduler().At(time.Millisecond, func() {})
}

// TestClockOfLaneTimers: per-node clocks fire on the owning lane at
// the exact requested instant, in every execution mode, and nested
// After scheduling works from inside a shard-lane callback.
func TestClockOfLaneTimers(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		w := newShardChain(t, shards, false)
		var at0, at1, nested time.Duration
		c0, c1 := w.n.ClockOf(w.e0), w.n.ClockOf(w.e1)
		c0.At(time.Millisecond, func() {
			at0 = c0.Now()
			c0.After(500*time.Microsecond, func() { nested = c0.Now() })
		})
		c1.At(time.Millisecond, func() { at1 = c1.Now() })
		w.n.RunUntil(5 * time.Millisecond)
		if at0 != time.Millisecond || at1 != time.Millisecond {
			t.Errorf("shards=%d: timers fired at %v/%v, want 1ms", shards, at0, at1)
		}
		if nested != 1500*time.Microsecond {
			t.Errorf("shards=%d: nested After fired at %v, want 1.5ms", shards, nested)
		}
	}
}
