package simnet

import "repro/internal/telemetry"

// DeferredCounter wraps a telemetry.Counter for the batched data
// plane's per-hop hot path. In scalar mode every Inc passes straight
// through; in batch mode increments accumulate in a plain field and
// flush to the (atomic) backing counter at observation boundaries —
// before any evtFunc dispatch, before drop hooks, and when Step or
// RunUntil returns. Since every way to observe a counter (metric
// dumps, LineStats, phase stats, control-plane callbacks) runs at one
// of those boundaries, observed values are identical in both modes;
// what changes is six LOCK-prefixed adds per hop becoming six plain
// adds plus one amortized flush.
//
// Not safe for concurrent use — like the scheduler, a deferred
// counter belongs to one world's event loop. Counters that other
// goroutines touch (the reactive controller's worker pool) must keep
// using the atomic telemetry.Counter directly.
type DeferredCounter struct {
	c       *telemetry.Counter
	pending int64
	n       *Network
}

// DeferCounter wraps c for batched-hot-path increments on this
// network. Multiple wrappers may share one backing counter (the
// scalar and peel-out paths keep incrementing it directly; sums
// interleave freely).
func (n *Network) DeferCounter(c *telemetry.Counter) *DeferredCounter {
	return &DeferredCounter{c: c, n: n}
}

// Inc adds 1.
func (d *DeferredCounter) Inc() { d.Add(1) }

// Add accumulates v, deferring the atomic update in batch mode.
// Inside a parallel shard window increments pass straight through to
// the atomic backing counter instead: lanes run concurrently there, so
// the single-goroutine deferral contract does not hold, and atomic
// adds commute — total counts (all any observer can see, since
// observation points sit at window barriers) are unchanged.
func (d *DeferredCounter) Add(v int64) {
	if !d.n.batch || d.n.inWindow {
		d.c.Add(v)
		return
	}
	if d.pending == 0 {
		d.n.dirty = append(d.n.dirty, d)
	}
	d.pending += v
}

// Value returns the logical count including any unflushed pending
// increments.
func (d *DeferredCounter) Value() int64 { return d.c.Value() + d.pending }

// DeferredHistogram wraps a telemetry.Histogram the same way
// DeferredCounter wraps a counter: in batch mode samples accumulate
// in local (unlocked) buckets plus a local count and sum, and fold
// into the backing histogram via Merge at flush boundaries. Values
// must be integral for the local float sum to stay byte-identical to
// per-sample Observe calls (see Merge); the data plane observes only
// whole hops and whole microseconds. Same flush boundaries and
// single-goroutine contract as DeferredCounter.
type DeferredHistogram struct {
	h      *telemetry.Histogram
	counts []int64
	n      int64
	sum    float64
	w      *Network
}

// DeferHistogram wraps h for batched-hot-path observations on this
// network.
func (n *Network) DeferHistogram(h *telemetry.Histogram) *DeferredHistogram {
	return &DeferredHistogram{h: h, counts: make([]int64, h.NumBuckets()), w: n}
}

// Observe records one sample, deferring the locked histogram update
// in batch mode. Parallel shard windows pass through to the mutexed
// histogram (same reasoning as DeferredCounter.Add: bucket counts and
// integral sums commute, so barrier-time observations are identical).
func (d *DeferredHistogram) Observe(v float64) {
	if !d.w.batch || d.w.inWindow {
		d.h.Observe(v)
		return
	}
	if d.n == 0 {
		d.w.dirtyH = append(d.w.dirtyH, d)
	}
	d.n++
	d.sum += v
	d.counts[d.h.BucketFor(v)]++
}

// flushCounters drains every dirty deferred counter and histogram
// into its backing telemetry cell. Called at observation boundaries;
// cheap when nothing is pending. The empty-case early return is
// load-bearing under sharding: inside parallel windows the dirty lists
// are always empty (Add/Observe pass through), and returning before
// any slice-header write keeps concurrent no-op flushes from lane
// evtFunc dispatches race-free.
func (n *Network) flushCounters() {
	if len(n.dirty) == 0 && len(n.dirtyH) == 0 {
		return
	}
	for i, d := range n.dirty {
		d.c.Add(d.pending)
		d.pending = 0
		n.dirty[i] = nil
	}
	n.dirty = n.dirty[:0]
	for i, d := range n.dirtyH {
		d.h.Merge(d.counts, d.n, d.sum)
		for j := range d.counts {
			d.counts[j] = 0
		}
		d.n, d.sum = 0, 0
		n.dirtyH[i] = nil
	}
	n.dirtyH = n.dirtyH[:0]
}
