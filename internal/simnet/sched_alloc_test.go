package simnet

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestSchedulerSteadyStateZeroAlloc: once the heap's backing array has
// grown, a schedule+dispatch cycle allocates nothing — the invariant
// the whole hot-path overhaul rests on.
func TestSchedulerSteadyStateZeroAlloc(t *testing.T) {
	var s Scheduler
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	for s.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state After+Step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSchedulerHeapOrder: a 4-ary heap with FIFO tiebreak must drain
// in (time, scheduling order), regardless of insertion order.
func TestSchedulerHeapOrder(t *testing.T) {
	var s Scheduler
	var got []int
	times := []time.Duration{5, 1, 3, 1, 4, 2, 1, 5, 0, 2}
	for i, at := range times {
		i := i
		s.At(at*time.Millisecond, func() { got = append(got, i) })
	}
	for s.Step() {
	}
	want := []int{8, 1, 3, 6, 5, 9, 2, 4, 0, 7} // sort by (time, insertion)
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestSchedulerPastEventCounter: scheduling into the virtual past
// clamps to now and bumps the attached counter.
func TestSchedulerPastEventCounter(t *testing.T) {
	var s Scheduler
	reg := telemetry.NewRegistry()
	c := reg.Counter("kar_sched_past_events_total")
	s.SetPastEventCounter(c)

	s.At(10*time.Millisecond, func() {})
	s.RunUntil(20 * time.Millisecond)
	if c.Value() != 0 {
		t.Fatalf("future scheduling bumped the past counter: %d", c.Value())
	}

	ran := false
	s.At(5*time.Millisecond, func() { ran = true }) // in the past now
	if c.Value() != 1 {
		t.Fatalf("past counter = %d, want 1", c.Value())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	if !s.Step() || !ran {
		t.Fatal("clamped event did not run")
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clamped event ran at %v, want clock held at 20ms", s.Now())
	}

	// Nil counter (no network attached) must not panic.
	var bare Scheduler
	bare.RunUntil(time.Millisecond)
	bare.At(0, func() {})
}
