// Package coprime allocates KAR switch IDs. Every core switch needs an
// ID such that (a) the IDs in use are pairwise coprime — the RNS basis
// requirement — and (b) the ID is strictly greater than the switch's
// highest port index, so a residue can address every port.
//
// IDs need not be prime (the paper's Fig. 1 uses 4, the reconstructed
// 15-node network uses 10 and 27); they only need to be mutually
// coprime. The Allocator therefore hands out the smallest integer that
// satisfies both constraints, which keeps M = ∏ IDs (and hence the
// route-ID bit length, paper §2.3) as small as possible.
package coprime

import (
	"fmt"
	"sort"

	"repro/internal/rns"
)

// Allocator hands out pairwise-coprime IDs. The zero value is ready to
// use. Allocator is not safe for concurrent use.
type Allocator struct {
	used []uint64
	// blocked holds every prime factor of every used ID: a candidate
	// is coprime with the whole set iff none of its prime factors is
	// blocked. This replaces the O(len(used)) GCD sweep per candidate
	// with an O(sqrt v) factorisation, which is what keeps
	// 1000-switch generated topologies buildable in milliseconds.
	blocked map[uint64]bool
	// cursor[min] is the first candidate not yet scanned for that
	// minimum. Everything below it was already allocated or rejected,
	// and rejections are permanent (the used set only grows), so
	// later Next calls with the same minimum resume instead of
	// rescanning.
	cursor map[uint64]uint64
}

// NewAllocator returns an allocator pre-seeded with IDs already in use
// (e.g. when extending an existing deployment). It returns an error if
// the seed set itself is not pairwise coprime.
func NewAllocator(used []uint64) (*Allocator, error) {
	if len(used) > 0 {
		if err := rns.CheckPairwiseCoprime(used); err != nil {
			return nil, fmt.Errorf("seed IDs: %w", err)
		}
	}
	a := &Allocator{}
	for _, u := range used {
		a.record(u, 0)
	}
	return a, nil
}

// Next returns the smallest id ≥ min (and ≥ 2) coprime with every
// previously allocated ID, and records it as used.
func (a *Allocator) Next(min uint64) (uint64, error) {
	if min < 2 {
		min = 2
	}
	start := min
	if c := a.cursor[min]; c > start {
		start = c
	}
	for v := start; ; v++ {
		if v == 0 { // wrapped around uint64; practically unreachable
			return 0, fmt.Errorf("coprime: ID space exhausted above %d", min)
		}
		if a.coprimeWithUsed(v) {
			a.record(v, min)
			return v, nil
		}
	}
}

// Used returns a copy of all allocated IDs in allocation order.
func (a *Allocator) Used() []uint64 { return append([]uint64(nil), a.used...) }

func (a *Allocator) coprimeWithUsed(v uint64) bool {
	ok := true
	primeFactors(v, func(p uint64) {
		if a.blocked[p] {
			ok = false
		}
	})
	return ok
}

// record marks v used and its prime factors blocked; when min is
// non-zero the scan cursor for that minimum advances past v.
func (a *Allocator) record(v, min uint64) {
	a.used = append(a.used, v)
	if a.blocked == nil {
		a.blocked = make(map[uint64]bool)
	}
	primeFactors(v, func(p uint64) { a.blocked[p] = true })
	if min != 0 {
		if a.cursor == nil {
			a.cursor = make(map[uint64]uint64)
		}
		a.cursor[min] = v + 1
	}
}

// primeFactors calls f once per distinct prime factor of v.
func primeFactors(v uint64, f func(p uint64)) {
	for p := uint64(2); p*p <= v; p++ {
		if v%p == 0 {
			f(p)
			for v%p == 0 {
				v /= p
			}
		}
	}
	if v > 1 {
		f(v)
	}
}

// Assign allocates one ID per entry of mins, where mins[i] is the
// minimum acceptable ID for node i (typically its port count). To keep
// the overall products small, nodes are served in descending order of
// their minimum, but results are returned in input order.
func Assign(mins []uint64) ([]uint64, error) {
	type req struct {
		idx int
		min uint64
	}
	reqs := make([]req, len(mins))
	for i, m := range mins {
		reqs[i] = req{idx: i, min: m}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].min > reqs[j].min })

	// Pre-size the used set: generated datacenter topologies assign
	// hundreds of IDs, and growing the slice one append at a time
	// would re-copy it O(n) times.
	alloc := Allocator{used: make([]uint64, 0, len(mins))}
	out := make([]uint64, len(mins))
	for _, r := range reqs {
		id, err := alloc.Next(r.min)
		if err != nil {
			return nil, err
		}
		out[r.idx] = id
	}
	return out, nil
}

// Primes returns the first n primes greater than or equal to min.
// KAR deployments that prefer prime IDs (like the reconstructed RNP28
// topology, whose IDs are the first 28 primes ≥ 7) use this directly.
func Primes(min uint64, n int) []uint64 {
	out := make([]uint64, 0, n)
	if min < 2 {
		min = 2
	}
	for v := min; len(out) < n; v++ {
		if IsPrime(v) {
			out = append(out, v)
		}
	}
	return out
}

// IsPrime reports primality by trial division; IDs are small (they fit
// in packet headers), so this is never a bottleneck.
func IsPrime(v uint64) bool {
	if v < 2 {
		return false
	}
	if v%2 == 0 {
		return v == 2
	}
	for d := uint64(3); d*d <= v; d += 2 {
		if v%d == 0 {
			return false
		}
	}
	return true
}
