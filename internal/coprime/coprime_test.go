package coprime

import (
	"math/rand"
	"testing"

	"repro/internal/rns"
)

func TestAllocatorNextSmallestFirst(t *testing.T) {
	var a Allocator
	want := []uint64{2, 3, 5, 7, 11, 13} // greedy over the integers yields primes
	for _, w := range want {
		got, err := a.Next(2)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if got != w {
			t.Fatalf("Next = %d, want %d (used %v)", got, w, a.Used())
		}
	}
}

func TestAllocatorRespectsMinimum(t *testing.T) {
	var a Allocator
	got, err := a.Next(6)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if got != 6 {
		t.Errorf("Next(6) = %d, want 6 (6 is coprime with nothing yet)", got)
	}
	// 7 is next coprime with 6; 8 shares 2, 9 shares 3.
	got, err = a.Next(7)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if got != 7 {
		t.Errorf("second Next(7) = %d, want 7", got)
	}
	got, err = a.Next(8)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if got != 11 {
		t.Errorf("Next(8) after {6,7} = %d, want 11 (8,9,10 conflict)", got)
	}
}

func TestNewAllocatorRejectsNonCoprimeSeed(t *testing.T) {
	if _, err := NewAllocator([]uint64{6, 10}); err == nil {
		t.Error("NewAllocator accepted a non-coprime seed set")
	}
}

func TestNewAllocatorSeeded(t *testing.T) {
	a, err := NewAllocator([]uint64{4, 7, 11, 5})
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	got, err := a.Next(2)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if got != 3 {
		t.Errorf("Next after fig1 basis = %d, want 3", got)
	}
}

func TestAssignProducesValidBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		mins := make([]uint64, n)
		for i := range mins {
			mins[i] = uint64(1 + rng.Intn(8)) // degrees 1..8
		}
		ids, err := Assign(mins)
		if err != nil {
			t.Fatalf("Assign(%v): %v", mins, err)
		}
		if err := rns.CheckPairwiseCoprime(ids); err != nil {
			t.Fatalf("Assign(%v) = %v: %v", mins, ids, err)
		}
		for i, id := range ids {
			if id < mins[i] {
				t.Fatalf("Assign(%v)[%d] = %d below minimum %d", mins, i, id, mins[i])
			}
		}
	}
}

func TestPrimes(t *testing.T) {
	got := Primes(7, 5)
	want := []uint64{7, 11, 13, 17, 19}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Primes(7, 5) = %v, want %v", got, want)
		}
	}
	// The RNP28 ID pool from DESIGN.md: first 28 primes ≥ 7 end at 127.
	rnp := Primes(7, 28)
	if rnp[27] != 127 {
		t.Errorf("28th prime >= 7 is %d, want 127", rnp[27])
	}
	if err := rns.CheckPairwiseCoprime(rnp); err != nil {
		t.Errorf("prime pool not coprime: %v", err)
	}
}

func TestIsPrime(t *testing.T) {
	tests := []struct {
		v    uint64
		want bool
	}{
		{0, false}, {1, false}, {2, true}, {3, true}, {4, false},
		{27, false}, {29, true}, {97, true}, {1 << 16, false},
		{65537, true}, {7919, true}, {7921, false}, // 89^2
	}
	for _, tt := range tests {
		if got := IsPrime(tt.v); got != tt.want {
			t.Errorf("IsPrime(%d) = %v, want %v", tt.v, got, tt.want)
		}
	}
}
