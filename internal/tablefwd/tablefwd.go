// Package tablefwd implements the stateful baseline KAR is compared
// against in Table 2: destination-based forwarding tables with
// precomputed loop-free backup next-hops, switched locally on port
// failure — the OpenFlow fast-failover / MPLS-FRR family. It exists to
// quantify the paper's stateless-vs-stateful contrast: a table switch
// carries one entry per destination edge (plus backups), a KAR switch
// carries a single integer ID.
package tablefwd

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// entry is one forwarding-table row.
type entry struct {
	primary int
	backup  int // -1 when no loop-free alternate exists
}

// Switch is a table-based core switch with local fast failover.
type Switch struct {
	net   *simnet.Network
	node  *topology.Node
	table map[string]entry // destination edge name → ports

	received  int64
	forwarded int64
	failovers int64
	drops     int64
}

var _ simnet.Handler = (*Switch)(nil)

// Stats snapshots switch counters.
type Stats struct {
	Received  int64
	Forwarded int64
	Failovers int64
	Drops     int64
}

// Stats returns the counters.
func (s *Switch) Stats() Stats {
	return Stats{Received: s.received, Forwarded: s.forwarded, Failovers: s.failovers, Drops: s.drops}
}

// StateEntries returns the number of forwarding-table rows — the
// quantity Table 2 contrasts with KAR's zero-table core.
func (s *Switch) StateEntries() int { return len(s.table) }

// HandlePacket forwards by destination lookup, failing over to the
// backup port when the primary is down.
func (s *Switch) HandlePacket(pkt *packet.Packet, inPort int) {
	s.received++
	pkt.TTL--
	if pkt.TTL <= 0 {
		s.net.Drop(pkt, simnet.DropTTL, s.node.Name())
		return
	}
	e, ok := s.table[pkt.Flow.Dst]
	if !ok {
		s.drops++
		s.net.Drop(pkt, simnet.DropNoViablePort, s.node.Name())
		return
	}
	if s.net.PortUp(s.node, e.primary) {
		s.forwarded++
		s.net.Send(s.node, e.primary, pkt)
		return
	}
	if e.backup >= 0 && s.net.PortUp(s.node, e.backup) {
		s.failovers++
		s.forwarded++
		s.net.Send(s.node, e.backup, pkt)
		return
	}
	s.drops++
	s.net.Drop(pkt, simnet.DropNoViablePort, s.node.Name())
}

// InstallAll builds one table switch per core node, with tables
// computed for every edge destination: the primary port follows the
// shortest-path tree toward the destination; the backup is the best
// link-protecting loop-free alternate (RFC 5286), as fast-failover
// deployments precompute.
func InstallAll(net *simnet.Network, weight topology.WeightFunc) (map[string]*Switch, error) {
	if weight == nil {
		weight = topology.HopWeight
	}
	g := net.Topology()
	switches := make(map[string]*Switch, len(g.CoreNodes()))
	for _, n := range g.CoreNodes() {
		switches[n.Name()] = &Switch{net: net, node: n, table: make(map[string]entry)}
	}

	for _, dst := range g.EdgeNodes() {
		tree, err := topology.ShortestPathTree(g, dst.Name(), weight)
		if err != nil {
			return nil, fmt.Errorf("tablefwd: tree toward %s: %w", dst, err)
		}
		// Distances toward dst, derived from the tree.
		dist := make(map[*topology.Node]float64, len(tree))
		var distTo func(n *topology.Node) float64
		distTo = func(n *topology.Node) float64 {
			if n == dst {
				return 0
			}
			if d, ok := dist[n]; ok {
				return d
			}
			l, ok := tree[n]
			if !ok {
				return 1e18
			}
			d := weight(l) + distTo(l.Other(n))
			dist[n] = d
			return d
		}

		for _, n := range g.CoreNodes() {
			l, ok := tree[n]
			if !ok {
				continue // dst unreachable from n
			}
			primary := l.PortOf(n)
			backup := -1
			best := 1e18
			for _, alt := range n.Links() {
				if alt == l {
					continue
				}
				nb := alt.Other(n)
				if nb.Kind() == topology.KindEdge && nb != dst {
					continue
				}
				// Link-protecting LFA (RFC 5286 inequality 1):
				// dist(N, D) < dist(N, S) + dist(S, D) ensures the
				// neighbour's own shortest path to D avoids S, hence
				// also the failed S-adjacent link — loop-free under a
				// single link failure.
				if d := distTo(nb); d < weight(alt)+distTo(n) && d < best {
					best = d
					backup = alt.PortOf(n)
				}
			}
			sw := switches[n.Name()]
			sw.table[dst.Name()] = entry{primary: primary, backup: backup}
		}
	}
	for _, sw := range switches {
		net.Bind(sw.node, sw)
	}
	return switches, nil
}

// TotalStateEntries sums table rows across switches.
func TotalStateEntries(switches map[string]*Switch) int {
	total := 0
	for _, sw := range switches {
		total += sw.StateEntries()
	}
	return total
}
