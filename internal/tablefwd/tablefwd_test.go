package tablefwd_test

import (
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/edge"
	"repro/internal/packet"
	"repro/internal/rns"
	"repro/internal/simnet"
	"repro/internal/tablefwd"
	"repro/internal/topology"
	"repro/internal/udpsim"
)

// buildTableWorld wires a Net15 network with table-based switches.
func buildTableWorld(t *testing.T) (*simnet.Network, map[string]*tablefwd.Switch, map[string]*edge.Edge) {
	t.Helper()
	g, err := topology.Net15()
	if err != nil {
		t.Fatalf("Net15: %v", err)
	}
	net := simnet.New(g)
	switches, err := tablefwd.InstallAll(net, nil)
	if err != nil {
		t.Fatalf("InstallAll: %v", err)
	}
	ctrl := controller.New(g)
	edges := make(map[string]*edge.Edge)
	for _, n := range g.EdgeNodes() {
		edges[n.Name()] = edge.New(net, n, ctrl)
	}
	return net, switches, edges
}

// startCBR wires a CBR flow; table switches route by destination, so
// the edge route entry only needs the right egress port (route ID
// unused by the core).
func startCBR(t *testing.T, net *simnet.Network, edges map[string]*edge.Edge, count int) (*udpsim.Sender, *udpsim.Receiver) {
	t.Helper()
	flow := packet.FlowID{Src: "AS1", Dst: "AS3"}
	as1 := edges["AS1"].Node()
	port, ok := as1.PortToward("SW10")
	if !ok {
		t.Fatal("AS1 has no port toward SW10")
	}
	edges["AS1"].InstallRoute("AS3", rns.RouteID{}, port)
	send, recv := udpsim.NewFlow(net, edges["AS1"], edges["AS3"], flow, udpsim.Config{
		Interval: time.Millisecond, Count: count,
	})
	return send, recv
}

func TestTableForwardingHealthy(t *testing.T) {
	net, switches, edges := buildTableWorld(t)
	send, recv := startCBR(t, net, edges, 200)
	send.Start()
	net.Scheduler().RunUntil(2 * time.Second)
	st := recv.Stats(send)
	if st.Received != 200 {
		t.Fatalf("received %d/200", st.Received)
	}
	if st.MinHops != 5 || st.MaxHops != 5 {
		t.Errorf("hops = [%d, %d], want the 5-hop shortest path", st.MinHops, st.MaxHops)
	}
	// Every switch holds one entry per edge destination.
	for name, sw := range switches {
		if got := sw.StateEntries(); got != 3 {
			t.Errorf("switch %s holds %d entries, want 3 (one per edge)", name, got)
		}
	}
	if total := tablefwd.TotalStateEntries(switches); total != 36 {
		t.Errorf("total state entries = %d, want 12 switches × 3 destinations = 36", total)
	}
}

func TestTableFastFailover(t *testing.T) {
	net, switches, edges := buildTableWorld(t)
	l, _ := net.Topology().LinkBetween("SW7", "SW13")
	net.FailLink(l)
	send, recv := startCBR(t, net, edges, 200)
	send.Start()
	net.Scheduler().RunUntil(2 * time.Second)
	st := recv.Stats(send)
	if st.Received != 200 {
		t.Fatalf("received %d/200 with a single failure; fast failover must cover it", st.Received)
	}
	if st.MaxHops <= 5 {
		t.Errorf("max hops = %d, want > 5 (detour)", st.MaxHops)
	}
	if sw7 := switches["SW7"].Stats(); sw7.Failovers == 0 {
		t.Error("SW7 recorded no failovers")
	}
}

// TestTableDoubleFailureDrops: with both the primary and the backup
// direction broken at the failure point, the table switch drops —
// the single-failure limitation Table 2 ascribes to precomputed
// alternates, which KAR's random deflection does not share.
func TestTableDoubleFailureDrops(t *testing.T) {
	net, _, edges := buildTableWorld(t)
	// At SW7 toward AS3, primary goes to SW13 and the precomputed
	// loop-free alternate is SW11. Break both.
	for _, pair := range [][2]string{{"SW7", "SW13"}, {"SW7", "SW11"}} {
		l, ok := net.Topology().LinkBetween(pair[0], pair[1])
		if !ok {
			t.Fatalf("no link %v", pair)
		}
		net.FailLink(l)
	}
	send, recv := startCBR(t, net, edges, 200)
	send.Start()
	net.Scheduler().RunUntil(2 * time.Second)
	st := recv.Stats(send)
	if st.Received != 0 {
		t.Fatalf("received %d packets through a double failure, want 0 (no third alternate)", st.Received)
	}
}

func TestBackupIsLoopFree(t *testing.T) {
	// Under any single link failure, delivery must never loop: packets
	// either arrive or are dropped within the TTL budget.
	net, _, edges := buildTableWorld(t)
	for _, l := range net.Topology().Links() {
		if l.A().Kind() != topology.KindCore || l.B().Kind() != topology.KindCore {
			continue
		}
		net.FailLink(l)
		send, recv := startCBR(t, net, edges, 20)
		send.Start()
		net.Scheduler().RunUntil(10 * time.Second)
		st := recv.Stats(send)
		if st.MaxHops > 12 {
			t.Errorf("failure %s: max hops %d suggests a forwarding loop", l.Name(), st.MaxHops)
		}
		net.RepairLink(l)
	}
}
