// Package fault provides composable, seeded failure injectors layered
// on simnet.Network: one-shot link cuts, deterministic and exponential
// link flapping, gray failures (probabilistic drop / bit corruption on
// a nominally-up line), and whole-switch crashes. Injectors only
// schedule virtual-time callbacks at install; all randomness comes
// from a single *rand.Rand seeded per injector, so a scenario replays
// byte-identically for the same seed. Down-state composes through the
// network's reference-counted holds: concurrent injectors on one link
// stack instead of fighting each other's repairs.
package fault

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Injector is one fault process that can be armed on a network. Kind
// names the injector type (stable, used as a metric label), Target the
// link or node it acts on, and Install validates the target and
// schedules the injector's whole timeline on the network's scheduler.
// Install must be called before the simulation runs.
type Injector interface {
	Kind() string
	Target() string
	Install(net *simnet.Network) error
}

// activate stamps the injector's activation on the telemetry plane: a
// fault_inject event at the current virtual instant plus one count in
// the kar_fault_injections_total family.
func activate(net *simnet.Network, inj Injector, detail string) {
	net.Metrics().Help("kar_fault_injections_total", "Fault injector activations, by injector kind.")
	net.Metrics().Counter("kar_fault_injections_total", "kind", inj.Kind()).Inc()
	net.Events().Record(telemetry.EventFaultInject, inj.Target(), detail)
}

func resolveLink(net *simnet.Network, kind, a, b string) (*topology.Link, error) {
	l, ok := net.Topology().LinkBetween(a, b)
	if !ok {
		return nil, fmt.Errorf("fault: %s: no link %s-%s in topology %q", kind, a, b, net.Topology().Name())
	}
	return l, nil
}

// LinkCut takes the A-B link down at Start and brings it back after
// Duration; Duration <= 0 cuts it for the rest of the run.
type LinkCut struct {
	A, B     string
	Start    time.Duration
	Duration time.Duration
}

func (c *LinkCut) Kind() string   { return "link_cut" }
func (c *LinkCut) Target() string { return c.A + "-" + c.B }

func (c *LinkCut) Install(net *simnet.Network) error {
	l, err := resolveLink(net, c.Kind(), c.A, c.B)
	if err != nil {
		return err
	}
	sched := net.Scheduler()
	sched.At(c.Start, func() {
		activate(net, c, fmt.Sprintf("duration=%v", c.Duration))
		net.AcquireLinkDown(l)
	})
	if c.Duration > 0 {
		sched.At(c.Start+c.Duration, func() { net.ReleaseLinkDown(l) })
	}
	return nil
}

// Flap is a deterministic on/off process: starting at Start and for
// Window, the A-B link goes down at the top of every Period and comes
// back after Duty*Period. No randomness — the full event train is
// precomputed at install, clamped to the window.
type Flap struct {
	A, B   string
	Start  time.Duration
	Window time.Duration
	Period time.Duration
	Duty   float64 // fraction of each period spent down, in (0,1)
}

func (f *Flap) Kind() string   { return "flap" }
func (f *Flap) Target() string { return f.A + "-" + f.B }

func (f *Flap) Install(net *simnet.Network) error {
	l, err := resolveLink(net, f.Kind(), f.A, f.B)
	if err != nil {
		return err
	}
	if f.Period <= 0 {
		return fmt.Errorf("fault: flap %s: period %v must be positive", f.Target(), f.Period)
	}
	if f.Duty <= 0 || f.Duty >= 1 {
		return fmt.Errorf("fault: flap %s: duty %v must be in (0,1)", f.Target(), f.Duty)
	}
	if f.Window <= 0 {
		return fmt.Errorf("fault: flap %s: window %v must be positive", f.Target(), f.Window)
	}
	sched := net.Scheduler()
	end := f.Start + f.Window
	downFor := time.Duration(f.Duty * float64(f.Period))
	sched.At(f.Start, func() {
		activate(net, f, fmt.Sprintf("period=%v duty=%v window=%v", f.Period, f.Duty, f.Window))
	})
	for k := 0; ; k++ {
		downAt := f.Start + time.Duration(k)*f.Period
		if downAt >= end {
			break
		}
		upAt := downAt + downFor
		if upAt > end {
			upAt = end
		}
		sched.At(downAt, func() { net.AcquireLinkDown(l) })
		sched.At(upAt, func() { net.ReleaseLinkDown(l) })
	}
	return nil
}

// ExpFlap is a renewal on/off process: up times ~ Exp(MeanUp), down
// times ~ Exp(MeanDown), both drawn lazily from one rng seeded with
// Seed. The process starts up at Start and is forced back up when the
// window closes, so the injector never leaks a hold past its window.
type ExpFlap struct {
	A, B     string
	Start    time.Duration
	Window   time.Duration
	MeanDown time.Duration
	MeanUp   time.Duration
	Seed     int64
}

func (f *ExpFlap) Kind() string   { return "exp_flap" }
func (f *ExpFlap) Target() string { return f.A + "-" + f.B }

func (f *ExpFlap) Install(net *simnet.Network) error {
	l, err := resolveLink(net, f.Kind(), f.A, f.B)
	if err != nil {
		return err
	}
	if f.MeanDown <= 0 || f.MeanUp <= 0 {
		return fmt.Errorf("fault: exp_flap %s: mean down %v and mean up %v must be positive", f.Target(), f.MeanDown, f.MeanUp)
	}
	if f.Window <= 0 {
		return fmt.Errorf("fault: exp_flap %s: window %v must be positive", f.Target(), f.Window)
	}
	rng := rand.New(rand.NewSource(f.Seed))
	sched := net.Scheduler()
	end := f.Start + f.Window
	draw := func(mean time.Duration) time.Duration {
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		if d < time.Nanosecond {
			d = time.Nanosecond
		}
		return d
	}
	var goDown, goUp func()
	goDown = func() {
		now := sched.Now()
		if now >= end {
			return
		}
		net.AcquireLinkDown(l)
		upAt := now + draw(f.MeanDown)
		if upAt > end {
			upAt = end
		}
		sched.At(upAt, goUp)
	}
	goUp = func() {
		net.ReleaseLinkDown(l)
		downAt := sched.Now() + draw(f.MeanUp)
		if downAt < end {
			sched.At(downAt, goDown)
		}
	}
	sched.At(f.Start, func() {
		activate(net, f, fmt.Sprintf("mean_down=%v mean_up=%v window=%v seed=%d", f.MeanDown, f.MeanUp, f.Window, f.Seed))
		downAt := sched.Now() + draw(f.MeanUp)
		if downAt < end {
			sched.At(downAt, goDown)
		}
	})
	return nil
}

// Gray installs a gray-failure impairment on the A-B line: each
// transiting packet is silently dropped with DropProb, else has one
// route-ID bit flipped with CorruptProb. The line stays nominally up
// the whole time — switches keep forwarding into it — which is exactly
// what makes gray failures nasty. Window <= 0 leaves the impairment on
// for the rest of the run.
type Gray struct {
	A, B        string
	Start       time.Duration
	Window      time.Duration
	DropProb    float64
	CorruptProb float64
	Seed        int64
}

func (g *Gray) Kind() string   { return "gray" }
func (g *Gray) Target() string { return g.A + "-" + g.B }

func (g *Gray) Install(net *simnet.Network) error {
	l, err := resolveLink(net, g.Kind(), g.A, g.B)
	if err != nil {
		return err
	}
	if g.DropProb < 0 || g.CorruptProb < 0 || g.DropProb+g.CorruptProb > 1 {
		return fmt.Errorf("fault: gray %s: drop %v + corrupt %v must stay within [0,1]", g.Target(), g.DropProb, g.CorruptProb)
	}
	sched := net.Scheduler()
	sched.At(g.Start, func() {
		activate(net, g, fmt.Sprintf("drop=%v corrupt=%v window=%v seed=%d", g.DropProb, g.CorruptProb, g.Window, g.Seed))
		net.SetImpairment(l, &simnet.Impairment{
			DropProb:    g.DropProb,
			CorruptProb: g.CorruptProb,
			Rand:        rand.New(rand.NewSource(g.Seed)),
		})
	})
	if g.Window > 0 {
		sched.At(g.Start+g.Window, func() { net.SetImpairment(l, nil) })
	}
	return nil
}

// SwitchCrash takes every port of one switch down atomically at Start
// — the node vanishes from the data plane in a single virtual instant
// — and restores all of them after Duration (<= 0: permanently).
type SwitchCrash struct {
	Switch   string
	Start    time.Duration
	Duration time.Duration
}

func (c *SwitchCrash) Kind() string   { return "switch_crash" }
func (c *SwitchCrash) Target() string { return c.Switch }

func (c *SwitchCrash) Install(net *simnet.Network) error {
	node, ok := net.Topology().Node(c.Switch)
	if !ok {
		return fmt.Errorf("fault: switch_crash: no node %q in topology %q", c.Switch, net.Topology().Name())
	}
	links := make([]*topology.Link, 0, node.Degree())
	for i := 0; i < node.Degree(); i++ {
		if l, ok := node.PortLink(i); ok {
			links = append(links, l)
		}
	}
	if len(links) == 0 {
		return fmt.Errorf("fault: switch_crash: node %q has no links", c.Switch)
	}
	sched := net.Scheduler()
	sched.At(c.Start, func() {
		activate(net, c, fmt.Sprintf("ports=%d duration=%v", len(links), c.Duration))
		for _, l := range links {
			net.AcquireLinkDown(l)
		}
	})
	if c.Duration > 0 {
		sched.At(c.Start+c.Duration, func() {
			for _, l := range links {
				net.ReleaseLinkDown(l)
			}
		})
	}
	return nil
}

// InstallAll arms every injector on the network, failing on the first
// bad one.
func InstallAll(net *simnet.Network, injs []Injector) error {
	for _, inj := range injs {
		if err := inj.Install(net); err != nil {
			return err
		}
	}
	return nil
}
