package fault

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// pairNet builds A-B with an optional detection model and a counting
// sink bound to B.
func pairNet(t *testing.T, opts ...simnet.Option) (*simnet.Network, *topology.Node, *topology.Link, *recorder) {
	t.Helper()
	g := topology.New("pair")
	for _, name := range []string{"A", "B"} {
		if _, err := g.AddEdge(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Connect("A", "B"); err != nil {
		t.Fatal(err)
	}
	n := simnet.New(g, opts...)
	a, _ := g.Node("A")
	b, _ := g.Node("B")
	rec := &recorder{}
	n.Bind(b, rec)
	link, _ := a.PortLink(0)
	return n, a, link, rec
}

type recorder struct{ pkts []*packet.Packet }

func (r *recorder) HandlePacket(pkt *packet.Packet, inPort int) { r.pkts = append(r.pkts, pkt) }

// starNet builds edges E0..E2 around one core switch S.
func starNet(t *testing.T) (*simnet.Network, *topology.Graph) {
	t.Helper()
	g := topology.New("star")
	if _, err := g.AddCore("S", 7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("E%d", i)
		if _, err := g.AddEdge(name); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Connect("S", name); err != nil {
			t.Fatal(err)
		}
	}
	return simnet.New(g), g
}

func TestLinkCutWindow(t *testing.T) {
	n, a, link, rec := pairNet(t)
	// Links propagate in ~1ms, so the cut window [2ms,6ms) leaves the
	// 0ms send clear to land before it and the 7ms send after it; the
	// 3ms send dies at the sender.
	cut := &LinkCut{A: "A", B: "B", Start: 2 * time.Millisecond, Duration: 4 * time.Millisecond}
	if err := cut.Install(n); err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{0, 3 * time.Millisecond, 7 * time.Millisecond} {
		at := at
		n.Scheduler().At(at, func() {
			n.Send(a, 0, &packet.Packet{Size: 100, TTL: 8, Seq: uint64(at / time.Millisecond)})
		})
	}
	n.Scheduler().RunUntil(time.Second)
	if len(rec.pkts) != 2 {
		t.Fatalf("delivered %d packets, want the 0ms and 7ms sends", len(rec.pkts))
	}
	if rec.pkts[0].Seq != 0 || rec.pkts[1].Seq != 7 {
		t.Errorf("delivered seqs %d,%d; want 0,7", rec.pkts[0].Seq, rec.pkts[1].Seq)
	}
	if !n.LinkUp(link) {
		t.Error("link still down after the cut window")
	}
	if got := n.Metrics().CounterValue("kar_fault_injections_total", "kind", "link_cut"); got != 1 {
		t.Errorf("kar_fault_injections_total{kind=link_cut} = %d, want 1", got)
	}
}

func TestPermanentLinkCut(t *testing.T) {
	n, _, link, _ := pairNet(t)
	cut := &LinkCut{A: "A", B: "B", Start: time.Millisecond} // Duration 0: forever
	if err := cut.Install(n); err != nil {
		t.Fatal(err)
	}
	n.Scheduler().RunUntil(time.Second)
	if n.LinkUp(link) {
		t.Error("permanent cut came back up")
	}
}

// The deterministic flap with period 2ms and duty 0.5 over [1ms,7ms)
// is down exactly on [1,2) [3,4) [5,6): probes at odd+0.5ms see it
// down, probes at even+0.5ms see it up, and it ends up after the
// window.
func TestFlapDeterministicTrain(t *testing.T) {
	n, _, link, _ := pairNet(t)
	f := &Flap{A: "A", B: "B", Start: time.Millisecond, Window: 6 * time.Millisecond, Period: 2 * time.Millisecond, Duty: 0.5}
	if err := f.Install(n); err != nil {
		t.Fatal(err)
	}
	states := map[time.Duration]bool{}
	for k := 0; k < 8; k++ {
		at := time.Duration(k)*time.Millisecond + 500*time.Microsecond
		n.Scheduler().At(at, func() { states[at] = n.LinkUp(link) })
	}
	n.Scheduler().RunUntil(time.Second)
	for at, up := range states {
		ms := at / time.Millisecond
		wantDown := ms == 1 || ms == 3 || ms == 5
		if up == wantDown {
			t.Errorf("at %v link up=%v, want down=%v", at, up, wantDown)
		}
	}
	if !n.LinkUp(link) {
		t.Error("flap leaked a down-hold past its window")
	}
}

func TestFlapValidation(t *testing.T) {
	n, _, _, _ := pairNet(t)
	for _, f := range []*Flap{
		{A: "A", B: "B", Window: time.Second, Period: 0, Duty: 0.5},
		{A: "A", B: "B", Window: time.Second, Period: time.Millisecond, Duty: 1.5},
		{A: "A", B: "B", Window: 0, Period: time.Millisecond, Duty: 0.5},
		{A: "A", B: "Z", Window: time.Second, Period: time.Millisecond, Duty: 0.5},
	} {
		if err := f.Install(n); err == nil {
			t.Errorf("Install(%+v) accepted invalid config", f)
		}
	}
}

// Two ExpFlaps with the same seed produce identical transition
// timelines; a different seed produces a different one. Transitions
// are observed through the link detection hook (immediate with no
// detection-latency model).
func TestExpFlapSeedDeterminism(t *testing.T) {
	timeline := func(seed int64) []string {
		n, _, _, _ := pairNet(t)
		var events []string
		n.SetLinkDetectionHook(func(l *topology.Link, up bool) {
			events = append(events, fmt.Sprintf("%v up=%v", n.Scheduler().Now(), up))
		})
		f := &ExpFlap{A: "A", B: "B", Window: 500 * time.Millisecond,
			MeanDown: 5 * time.Millisecond, MeanUp: 10 * time.Millisecond, Seed: seed}
		if err := f.Install(n); err != nil {
			t.Fatal(err)
		}
		n.Scheduler().RunUntil(time.Second)
		return events
	}
	a, b, c := timeline(42), timeline(42), timeline(43)
	if len(a) == 0 {
		t.Fatal("500ms window with 10ms mean up produced no transitions")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different timelines:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced identical flap timelines")
	}
}

func TestExpFlapNeverLeaksHoldPastWindow(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n, _, link, _ := pairNet(t)
		f := &ExpFlap{A: "A", B: "B", Window: 50 * time.Millisecond,
			MeanDown: 20 * time.Millisecond, MeanUp: time.Millisecond, Seed: seed}
		if err := f.Install(n); err != nil {
			t.Fatal(err)
		}
		n.Scheduler().RunUntil(time.Second)
		if !n.LinkUp(link) {
			t.Fatalf("seed %d: link still down after the flap window", seed)
		}
	}
}

// Gray impairment: total loss inside the window, clean delivery after
// it, all losses under the kar_fault_* family.
func TestGrayWindow(t *testing.T) {
	n, a, link, rec := pairNet(t)
	g := &Gray{A: "A", B: "B", Start: time.Millisecond, Window: 4 * time.Millisecond, DropProb: 1, Seed: 9}
	if err := g.Install(n); err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{2 * time.Millisecond, 3 * time.Millisecond, 6 * time.Millisecond} {
		at := at
		n.Scheduler().At(at, func() {
			n.Send(a, 0, &packet.Packet{Size: 100, TTL: 8, Seq: uint64(at / time.Millisecond)})
		})
	}
	n.Scheduler().RunUntil(time.Second)
	if len(rec.pkts) != 1 || rec.pkts[0].Seq != 6 {
		t.Fatalf("delivered %d packets, want only the post-window 6ms send", len(rec.pkts))
	}
	if got := n.Metrics().CounterValue("kar_fault_gray_drops_total", "link", link.Name()); got != 2 {
		t.Errorf("gray drops = %d, want 2", got)
	}
}

func TestGrayValidation(t *testing.T) {
	n, _, _, _ := pairNet(t)
	if err := (&Gray{A: "A", B: "B", DropProb: 0.8, CorruptProb: 0.5}).Install(n); err == nil {
		t.Error("accepted drop+corrupt probabilities summing past 1")
	}
	if err := (&Gray{A: "A", B: "Z"}).Install(n); err == nil {
		t.Error("accepted a nonexistent link")
	}
}

// SwitchCrash downs every port of the switch in one virtual instant
// and restores them all after the duration.
func TestSwitchCrashHoldsAllPorts(t *testing.T) {
	n, g := starNet(t)
	s, _ := g.Node("S")
	c := &SwitchCrash{Switch: "S", Start: time.Millisecond, Duration: 4 * time.Millisecond}
	if err := c.Install(n); err != nil {
		t.Fatal(err)
	}
	downAll, upAll := false, false
	n.Scheduler().At(2*time.Millisecond, func() {
		downAll = true
		for i := 0; i < s.Degree(); i++ {
			l, _ := s.PortLink(i)
			if n.LinkUp(l) {
				downAll = false
			}
		}
	})
	n.Scheduler().At(6*time.Millisecond, func() {
		upAll = true
		for i := 0; i < s.Degree(); i++ {
			l, _ := s.PortLink(i)
			if !n.LinkUp(l) {
				upAll = false
			}
		}
	})
	n.Scheduler().RunUntil(time.Second)
	if !downAll {
		t.Error("some port of the crashed switch stayed up during the crash")
	}
	if !upAll {
		t.Error("some port stayed down after the crash ended")
	}
	if err := (&SwitchCrash{Switch: "nope"}).Install(n); err == nil {
		t.Error("accepted a nonexistent switch")
	}
}

// A crash overlapping a scheduled single-link window composes through
// the refcount: the shared link comes up only when both end.
func TestCrashComposesWithScheduledWindow(t *testing.T) {
	n, g := starNet(t)
	l, _ := g.LinkBetween("S", "E0")
	n.ScheduleFailure(l, time.Millisecond, 10*time.Millisecond) // [1ms,11ms)
	c := &SwitchCrash{Switch: "S", Start: 2 * time.Millisecond, Duration: 2 * time.Millisecond}
	if err := c.Install(n); err != nil {
		t.Fatal(err)
	}
	var at5, at12 bool
	n.Scheduler().At(5*time.Millisecond, func() { at5 = n.LinkUp(l) })
	n.Scheduler().At(12*time.Millisecond, func() { at12 = n.LinkUp(l) })
	n.Scheduler().RunUntil(time.Second)
	if at5 {
		t.Error("S-E0 up at 5ms while the scheduled window still holds it")
	}
	if !at12 {
		t.Error("S-E0 down at 12ms after both holds released")
	}
}

// Every injector's activation lands in the event log as fault_inject
// and in kar_fault_injections_total by kind.
func TestInjectionTelemetry(t *testing.T) {
	n, _, _, _ := pairNet(t)
	injs := []Injector{
		&LinkCut{A: "A", B: "B", Start: time.Millisecond, Duration: time.Millisecond},
		&Flap{A: "A", B: "B", Start: 5 * time.Millisecond, Window: 4 * time.Millisecond, Period: 2 * time.Millisecond, Duty: 0.25},
		&Gray{A: "A", B: "B", Start: 10 * time.Millisecond, Window: time.Millisecond, DropProb: 0.5, Seed: 3},
	}
	if err := InstallAll(n, injs); err != nil {
		t.Fatal(err)
	}
	n.Scheduler().RunUntil(time.Second)
	for _, kind := range []string{"link_cut", "flap", "gray"} {
		if got := n.Metrics().CounterValue("kar_fault_injections_total", "kind", kind); got != 1 {
			t.Errorf("kar_fault_injections_total{kind=%s} = %d, want 1", kind, got)
		}
	}
	var faults int
	for _, e := range n.Events().Events() {
		if e.Kind == telemetry.EventFaultInject {
			faults++
		}
	}
	if faults != 3 {
		t.Errorf("recorded %d fault_inject events, want 3", faults)
	}
}

func TestInstallAllStopsOnBadInjector(t *testing.T) {
	n, _, _, _ := pairNet(t)
	err := InstallAll(n, []Injector{
		&LinkCut{A: "A", B: "B"},
		&LinkCut{A: "A", B: "Z"},
	})
	if err == nil {
		t.Fatal("InstallAll accepted an injector on a nonexistent link")
	}
}
