package resilience

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/analysis"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// allPairRoutes lists every ordered edge pair of g as a RouteSpec —
// the default route set the verifier CLI sweeps.
func allPairRoutes(g *topology.Graph) []RouteSpec {
	var routes []RouteSpec
	for _, a := range g.EdgeNodes() {
		for _, b := range g.EdgeNodes() {
			if a != b {
				routes = append(routes, RouteSpec{Src: a.Name(), Dst: b.Name()})
			}
		}
	}
	return routes
}

// The headline acceptance case: Net15 under per-destination
// auto-protection must survive every connected single-link failure
// with certainty, for EVERY route — including the AS1-bound direction
// that the hand-listed Net15FullProtection (rooted only at SW29) used
// to leave exposed. The controller plans a destination-rooted tree per
// route, so there is no privileged root and no asymmetric gap, whether
// deflections are resolved randomly (nip) or deterministically along
// the trees (dtree).
func TestNet15FullProtectionSurvivesAllSingles(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep(g, allPairRoutes(g), Config{
		Policies:        []string{"nip", "dtree"},
		AutoProtect:     true,
		ProtectionLabel: "auto",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Routes != 6 {
		t.Fatalf("routes = %d, want 6", rep.Routes)
	}
	for _, sc := range rep.Scores {
		if sc.Singles == 0 {
			t.Errorf("%s->%s policy=%s: no connected single-failure cases", sc.Src, sc.Dst, sc.Policy)
		}
		if sc.SurviveFraction != 1 {
			t.Errorf("%s->%s policy=%s: survive fraction %v (worst %v at %s), want 1",
				sc.Src, sc.Dst, sc.Policy, sc.SurviveFraction, sc.WorstPDeliver, sc.WorstPDeliverFailure)
		}
	}
	// Nothing degraded or lost, so no link may have a blast radius.
	for _, im := range rep.Impacts {
		t.Errorf("link %s has blast radius %d despite full survival", im.Link, im.Affected)
	}
}

// The fix is symmetric by construction: A->B and B->A must earn the
// same single-failure survive fraction under auto-protection, on both
// canned topologies. Before per-destination planning, the reverse of a
// protected route was quietly unprotected (the tree was rooted at one
// end only).
func TestAutoProtectionSymmetric(t *testing.T) {
	for _, mk := range []struct {
		name string
		fn   func() (*topology.Graph, error)
	}{
		{"net15", topology.Net15},
		{"rnp28", topology.RNP28},
	} {
		g, err := mk.fn()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Sweep(g, allPairRoutes(g), Config{
			Policies:        []string{"nip", "dtree"},
			AutoProtect:     true,
			ProtectionLabel: "auto",
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range rep.Scores {
			rev, ok := rep.Score(sc.Dst, sc.Src, sc.Policy)
			if !ok {
				t.Fatalf("%s: no reverse score for %s->%s", mk.name, sc.Src, sc.Dst)
			}
			if sc.SurviveFraction != rev.SurviveFraction {
				t.Errorf("%s policy=%s: %s->%s survives %v but %s->%s survives %v",
					mk.name, sc.Policy, sc.Src, sc.Dst, sc.SurviveFraction,
					rev.Src, rev.Dst, rev.SurviveFraction)
			}
		}
	}
}

// Unprotected deterministic forwarding must NOT survive everything —
// this is the case the -verify-min gate exists for.
func TestNet15UnprotectedNoneHasLosses(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep(g, allPairRoutes(g), Config{
		Policies:        []string{"none"},
		ProtectionLabel: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	min, worst := rep.MinSurviveFraction()
	if min >= 1 {
		t.Fatalf("unprotected none survives everything (min fraction %v)", min)
	}
	if worst == nil || worst.Lost == 0 {
		t.Errorf("worst score %+v has no lost cases", worst)
	}
	if len(rep.Impacts) == 0 {
		t.Error("no blast-radius entries despite losses")
	}
}

// The report and the kar_verify_* counters must be byte-identical at
// any worker count.
func TestReportIdenticalAcrossWorkerCounts(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ([]byte, []byte) {
		reg := telemetry.NewRegistry()
		rep, err := Sweep(g, allPairRoutes(g), Config{
			Protection:      topology.Net15PartialProtection,
			ProtectionLabel: "partial",
			Pairs:           8,
			PairSeed:        7,
			Workers:         workers,
			Registry:        reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		var prom bytes.Buffer
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		return js, prom.Bytes()
	}
	js1, prom1 := run(1)
	js4, prom4 := run(4)
	if !bytes.Equal(js1, js4) {
		t.Errorf("JSON report differs between -workers 1 and 4:\n%s\n---\n%s", js1, js4)
	}
	if !bytes.Equal(prom1, prom4) {
		t.Errorf("metrics differ between -workers 1 and 4:\n%s\n---\n%s", prom1, prom4)
	}
}

// The deterministic walk for "none" must agree with the Markov chain
// run under the same policy, for every route and single failure.
func TestWalkNoneMatchesChain(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	routes := allPairRoutes(g)
	ctrl, ingress, err := buildController(g, routes, topology.Net15PartialProtection, false)
	if err != nil {
		t.Fatal(err)
	}
	for ri, rt := range routes {
		for _, l := range g.Links() {
			failed := map[*topology.Link]bool{l: true}
			if !connected(g, rt.Src, rt.Dst, failed) || l == ingress[ri] {
				continue
			}
			walk, err := walkDeterministic(ctrl, "none", rt.Src, rt.Dst, failed)
			if err != nil {
				t.Fatalf("%s->%s fail=%s: walk: %v", rt.Src, rt.Dst, l.Name(), err)
			}
			a, err := analysis.New(ctrl, "none", []*topology.Link{l})
			if err != nil {
				t.Fatal(err)
			}
			chain, err := a.Analyze(rt.Src, rt.Dst)
			if err != nil {
				t.Fatalf("%s->%s fail=%s: chain: %v", rt.Src, rt.Dst, l.Name(), err)
			}
			if walk.PDeliver != chain.PDeliver {
				t.Errorf("%s->%s fail=%s: walk PDeliver=%v, chain=%v",
					rt.Src, rt.Dst, l.Name(), walk.PDeliver, chain.PDeliver)
			}
			if walk.PDeliver == 1 && walk.ExpectedHops != chain.ExpectedHops {
				t.Errorf("%s->%s fail=%s: walk hops=%v, chain=%v",
					rt.Src, rt.Dst, l.Name(), walk.ExpectedHops, chain.ExpectedHops)
			}
		}
	}
}

// The headline k=2 comparison: under auto protection both policies
// survive every single failure, but on sampled two-link failures the
// structured failover must beat NIP's random walk strictly, on both
// canned topologies — the deterministic fallback order never traps
// itself in a broken region the way an unlucky walk can.
func TestDtreeBeatsNIPOnFailurePairs(t *testing.T) {
	for _, mk := range []struct {
		name string
		fn   func() (*topology.Graph, error)
	}{
		{"net15", topology.Net15},
		{"rnp28", topology.RNP28},
	} {
		g, err := mk.fn()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Sweep(g, allPairRoutes(g), Config{
			Policies:        []string{"nip", "dtree"},
			AutoProtect:     true,
			ProtectionLabel: "auto",
			Pairs:           200,
			PairSeed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		nip, ok1 := rep.Total("nip")
		dtree, ok2 := rep.Total("dtree")
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing policy totals", mk.name)
		}
		if nip.SurviveFraction != 1 || dtree.SurviveFraction != 1 {
			t.Errorf("%s: k=1 fractions nip=%v dtree=%v, want 1 and 1",
				mk.name, nip.SurviveFraction, dtree.SurviveFraction)
		}
		if nip.PairCases != dtree.PairCases {
			t.Fatalf("%s: pair case counts differ (%d vs %d)", mk.name, nip.PairCases, dtree.PairCases)
		}
		if dtree.PairSurvived <= nip.PairSurvived {
			t.Errorf("%s: dtree survives %d/%d pairs, nip %d/%d — want strictly more",
				mk.name, dtree.PairSurvived, dtree.PairCases, nip.PairSurvived, nip.PairCases)
		}
	}
}

// The deterministic walk for "dtree" must agree with the Markov chain
// run under the same policy — the chain delegates to deflect.DTree, so
// a mismatch means the walk semantics (TTL, re-encode, cycle guard)
// drifted from the analytical model.
func TestWalkDtreeMatchesChain(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	routes := allPairRoutes(g)
	ctrl, ingress, err := buildController(g, routes, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	for ri, rt := range routes {
		for _, l := range g.Links() {
			failed := map[*topology.Link]bool{l: true}
			if !connected(g, rt.Src, rt.Dst, failed) || l == ingress[ri] {
				continue
			}
			walk, err := walkDeterministic(ctrl, "dtree", rt.Src, rt.Dst, failed)
			if err != nil {
				t.Fatalf("%s->%s fail=%s: walk: %v", rt.Src, rt.Dst, l.Name(), err)
			}
			a, err := analysis.New(ctrl, "dtree", []*topology.Link{l})
			if err != nil {
				t.Fatal(err)
			}
			chain, err := a.Analyze(rt.Src, rt.Dst)
			if err != nil {
				t.Fatalf("%s->%s fail=%s: chain: %v", rt.Src, rt.Dst, l.Name(), err)
			}
			if walk.PDeliver != chain.PDeliver {
				t.Errorf("%s->%s fail=%s: walk PDeliver=%v, chain=%v",
					rt.Src, rt.Dst, l.Name(), walk.PDeliver, chain.PDeliver)
			}
			if walk.PDeliver == 1 && walk.ExpectedHops != chain.ExpectedHops {
				t.Errorf("%s->%s fail=%s: walk hops=%v, chain=%v",
					rt.Src, rt.Dst, l.Name(), walk.ExpectedHops, chain.ExpectedHops)
			}
		}
	}
}

// Failures that physically disconnect src from dst are tallied as
// disconnected and excluded from the survive fraction.
func TestDisconnectedExcluded(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	rep, err := Sweep(g, []RouteSpec{{Src: "AS1", Dst: "AS2"}}, Config{
		Policies: []string{"none"},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := rep.Scores[0]
	// Each AS is single-homed: its access link is a cut edge, and the
	// peer's access link is too.
	if sc.Disconnected < 2 {
		t.Errorf("disconnected = %d, want >= 2 (both access links)", sc.Disconnected)
	}
	if sc.Singles+sc.Disconnected != rep.Links {
		t.Errorf("singles(%d) + disconnected(%d) != links(%d)", sc.Singles, sc.Disconnected, rep.Links)
	}
	cases := reg.SumCounter("kar_verify_cases_total")
	sum := reg.SumCounter("kar_verify_survived_total") +
		reg.SumCounter("kar_verify_degraded_total") +
		reg.SumCounter("kar_verify_lost_total") +
		reg.SumCounter("kar_verify_disconnected_total")
	if cases == 0 || cases != sum {
		t.Errorf("counter census: cases=%d, outcome sum=%d", cases, sum)
	}
	if got := reg.CounterValue("kar_verify_sweeps_total"); got != 1 {
		t.Errorf("kar_verify_sweeps_total = %d, want 1", got)
	}
}

// Pair sampling is seeded, deduplicated and capped at C(n,2).
func TestPairSamplingDeterministicAndCapped(t *testing.T) {
	g, err := topology.Generate(topology.GenConfig{Cores: 5, ExtraLinks: 2, Edges: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	nLinks := len(g.Links())
	maxPairs := nLinks * (nLinks - 1) / 2
	run := func() *Report {
		rep, err := Sweep(g, allPairRoutes(g), Config{
			Policies: []string{"nip"},
			Pairs:    maxPairs + 100, // ask for more than exist
			PairSeed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if r1.PairsDrawn != maxPairs {
		t.Errorf("pairs drawn = %d, want capped at %d", r1.PairsDrawn, maxPairs)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if !bytes.Equal(j1, j2) {
		t.Error("same PairSeed produced different reports")
	}
}

// Duplicate routes and unknown policies are rejected up front.
func TestSweepInputValidation(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(g, []RouteSpec{{Src: "AS1", Dst: "AS2"}, {Src: "AS1", Dst: "AS2"}}, Config{}); err == nil {
		t.Error("duplicate route accepted")
	}
	if _, err := Sweep(g, []RouteSpec{{Src: "AS1", Dst: "AS2"}}, Config{Policies: []string{"bogus"}}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Sweep(g, nil, Config{}); err == nil {
		t.Error("empty route set accepted")
	}
}
