package resilience_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/udpsim"
)

// Cross-validation of the verifier's closed-form delivery probability
// against the packet-level simulation: for each policy, fail one link
// permanently before any traffic, push a seeded CBR flow through the
// full data plane, and require the measured delivery ratio to sit in
// a band around the Markov-chain prediction.
//
// The chain's one modeling gap used to force a loose one-sided band:
// Analyze walks forever while real packets carry a TTL, so the
// simulation could undershoot by up to the Markov bound E[hops]/TTL —
// on hp that bound swallowed almost the whole unit interval.
// DeliverWithin closes the gap: it computes the exact TTL-truncated
// delivery probability under the simulator's discipline (cores
// decrement, edges refresh on re-encode), so the band is just sampling
// noise, symmetric, and asserted on both sides — an overshoot fails
// the same way an undershoot does.

type xvCase struct {
	name       string
	graph      func() (*topology.Graph, error)
	path       []string // pinned route (nil: shortest E1->E2)
	src, dst   string
	protection [][2]string
	fail       [2]string
}

func xvCases(t *testing.T) []xvCase {
	t.Helper()
	cases := []xvCase{
		{
			name:       "net15",
			graph:      topology.Net15,
			path:       []string{"AS1", "SW10", "SW7", "SW13", "SW29", "AS3"},
			src:        "AS1",
			dst:        "AS3",
			protection: topology.Net15PartialProtection,
			fail:       [2]string{"SW7", "SW13"},
		},
	}
	// One generated topology: fail the first on-path core link whose
	// removal keeps the graph connected.
	gen := func() (*topology.Graph, error) {
		return topology.Generate(topology.GenConfig{Cores: 6, ExtraLinks: 3, Edges: 2, Seed: 7})
	}
	g, err := gen()
	if err != nil {
		t.Fatal(err)
	}
	path, err := topology.ShortestPath(g, "E1", "E2", topology.HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	var pick *topology.Link
	for _, l := range path.Links() {
		if l.A().Kind() == topology.KindCore && l.B().Kind() == topology.KindCore &&
			stillConnected(g, "E1", "E2", l) {
			pick = l
			break
		}
	}
	if pick == nil {
		t.Fatal("generated topology has no survivable on-path core link; pick another seed")
	}
	cases = append(cases, xvCase{
		name:  "generated",
		graph: gen,
		src:   "E1",
		dst:   "E2",
		fail:  [2]string{pick.A().Name(), pick.B().Name()},
	})
	return cases
}

func stillConnected(g *topology.Graph, src, dst string, without *topology.Link) bool {
	s, _ := g.Node(src)
	d, _ := g.Node(dst)
	visited := map[*topology.Node]bool{s: true}
	stack := []*topology.Node{s}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == d {
			return true
		}
		for i := 0; i < n.Degree(); i++ {
			l, ok := n.PortLink(i)
			if !ok || l == without {
				continue
			}
			if o := l.Other(n); !visited[o] {
				visited[o] = true
				stack = append(stack, o)
			}
		}
	}
	return false
}

func TestClosedFormMatchesSimulation(t *testing.T) {
	for _, tc := range xvCases(t) {
		for _, pol := range []string{"none", "hp", "avp", "nip", "dtree"} {
			t.Run(tc.name+"/"+pol, func(t *testing.T) {
				g, err := tc.graph()
				if err != nil {
					t.Fatal(err)
				}
				policy, err := experiment.PolicyByName(pol)
				if err != nil {
					t.Fatal(err)
				}
				w := experiment.NewWorld(g, policy, 42)
				if tc.path != nil {
					_, err = w.InstallRouteOnPath(tc.path, tc.protection)
				} else {
					_, err = w.InstallRoute(tc.src, tc.dst, tc.protection)
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := w.FailLinkBetween(tc.fail[0], tc.fail[1], 0, 0); err != nil {
					t.Fatal(err)
				}

				s, r := udpsim.NewFlow(w.Net, w.Edges[tc.src], w.Edges[tc.dst],
					packet.FlowID{Src: tc.src, Dst: tc.dst}, udpsim.Config{Interval: time.Millisecond})
				sched := w.Net.Scheduler()
				sched.At(0, s.Start)
				sched.At(2*time.Second, s.Stop)
				w.Run(3 * time.Second)
				st := r.Stats(s)
				if st.Sent < 1000 {
					t.Fatalf("only %d packets sent", st.Sent)
				}
				sim := st.DeliveryRatio()

				// The verifier's closed form, on the same controller the
				// simulation routed with.
				l, ok := g.LinkBetween(tc.fail[0], tc.fail[1])
				if !ok {
					t.Fatalf("no %s-%s link", tc.fail[0], tc.fail[1])
				}
				a, err := analysis.New(w.Ctrl, pol, []*topology.Link{l})
				if err != nil {
					t.Fatal(err)
				}
				res, err := a.Analyze(tc.src, tc.dst)
				if err != nil {
					t.Fatal(err)
				}

				pTTL, err := a.DeliverWithin(tc.src, tc.dst, packet.DefaultTTL)
				if err != nil {
					t.Fatal(err)
				}
				// Truncation can only remove trajectory mass, and the
				// removed mass obeys the Markov bound — two internal
				// consistency checks on the exact computation itself.
				const eps = 1e-9
				if pTTL > res.PDeliver+eps {
					t.Errorf("DeliverWithin %.6f exceeds untruncated PDeliver %.6f", pTTL, res.PDeliver)
				}
				if res.PDeliver > 0 {
					if bound := math.Min(1, res.ExpectedHops/float64(packet.DefaultTTL)); res.PDeliver-pTTL > bound+eps {
						t.Errorf("truncated mass %.6f exceeds Markov bound %.6f", res.PDeliver-pTTL, bound)
					}
				}

				// Two-sided band around the exact truncated probability:
				// binomial sampling noise plus a hair for the finite
				// trailing window, nothing else.
				sigma := math.Sqrt(pTTL * (1 - pTTL) / float64(st.Sent))
				slack := 3*sigma + 0.005
				lo, hi := pTTL-slack, pTTL+slack
				if sim < lo || sim > hi {
					t.Errorf("simulated delivery %.4f outside [%.4f, %.4f] around exact TTL-truncated %.4f (untruncated %.4f, E[hops]=%.1f)",
						sim, lo, hi, pTTL, res.PDeliver, res.ExpectedHops)
				}
				t.Log(fmt.Sprintf("exact(ttl)=%.4f closed=%.4f sim=%.4f band=[%.4f,%.4f] E[hops]=%.1f",
					pTTL, res.PDeliver, sim, lo, hi, res.ExpectedHops))
			})
		}
	}
}
