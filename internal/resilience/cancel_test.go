package resilience

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/topology"
)

// settleGoroutines polls until the goroutine count is back at or below
// base (a small tolerance covers runtime helpers), failing after a
// generous deadline.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at baseline", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSweepContextCancelStopsPromptly(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	routes, err := AllPairRoutes(g)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	// Cancel mid-sweep, from the first progress callback: every worker
	// must stop at its next case boundary and the pool must drain.
	cfg := Config{
		Policies: []string{"none", "hp", "avp", "nip"},
		Pairs:    50,
		Workers:  4,
		Progress: func(done, total int) {
			if done == 1 {
				cancel()
			}
		},
	}
	rep, err := SweepContext(ctx, g, routes, cfg)
	if rep != nil {
		t.Fatal("cancelled sweep returned a partial report")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	settleGoroutines(t, base)
}

func TestSweepContextNilAndBackgroundComplete(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	routes := []RouteSpec{{Src: "AS1", Dst: "AS3"}}
	repA, err := SweepContext(nil, g, routes, Config{Policies: []string{"none"}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Sweep(g, routes, Config{Policies: []string{"none"}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if repA.Cases != repB.Cases || len(repA.Scores) != len(repB.Scores) {
		t.Fatalf("context sweep diverged: %d/%d cases, %d/%d scores",
			repA.Cases, repB.Cases, len(repA.Scores), len(repB.Scores))
	}
	for i := range repA.Scores {
		if repA.Scores[i] != repB.Scores[i] {
			t.Fatalf("score %d differs across Sweep and SweepContext", i)
		}
	}
}

func TestSweepProgressReachesTotal(t *testing.T) {
	g, err := topology.Net15()
	if err != nil {
		t.Fatal(err)
	}
	routes := []RouteSpec{{Src: "AS1", Dst: "AS3"}, {Src: "AS1", Dst: "AS2"}}
	var last int
	rep, err := Sweep(g, routes, Config{
		Policies: []string{"none", "nip"},
		Workers:  1, // single worker keeps the callback sequential
		Progress: func(done, total int) {
			if done > total {
				t.Errorf("progress overflow: %d/%d", done, total)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != rep.Cases {
		t.Fatalf("progress reached %d, want %d cases", last, rep.Cases)
	}
}
