// Package resilience verifies KAR's core claim — that CRT-embedded
// deflection paths survive failures — exhaustively instead of on
// hand-picked examples: for an arbitrary topology and a
// controller-installed route set it enumerates every single-link
// failure (plus optional seeded samples of two-link failure pairs)
// and computes, for each (route, policy, failure) case, the exact
// delivery verdict — via the internal/analysis Markov-chain machinery
// for the probabilistic policies and a deterministic walk for "none".
// The sweep produces per-route resilience scores (fraction of
// failures survived, worst-case delivery probability and stretch) and
// a per-link blast-radius ranking of the failures that actually hurt.
//
// Cases fan out across a bounded worker pool with deterministic
// sharding: jobs are enumerated in a fixed (route, policy, failure)
// order, workers pull indices from an atomic counter, results land by
// index, and all aggregation happens in a sequential merge pass — so
// the report and every kar_verify_* counter are byte-identical at any
// worker count (the same discipline as the controller's reroute
// pool).
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/deflect"
	"repro/internal/packet"
	"repro/internal/rns"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// surviveEps separates "certain delivery" from "probably delivered":
// a case survives only when PDeliver ≥ 1 - surviveEps.
const surviveEps = 1e-9

// Outcome classifies one (route, policy, failure) case.
type Outcome string

const (
	// Survived: delivery is certain (PDeliver ≥ 1-ε).
	Survived Outcome = "survived"
	// Degraded: delivery is possible but not certain.
	Degraded Outcome = "degraded"
	// Lost: delivery probability is (numerically) zero.
	Lost Outcome = "lost"
	// Disconnected: the failure physically separates src from dst; no
	// routing scheme could deliver, so the case is excluded from
	// survive fractions and blast radii.
	Disconnected Outcome = "disconnected"
)

// RouteSpec names one route to verify. An empty Path means shortest
// path; otherwise Path pins the full node sequence (edge endpoints
// included), like the paper's hand-picked evaluation routes.
type RouteSpec struct {
	Src  string   `json:"src"`
	Dst  string   `json:"dst"`
	Path []string `json:"path,omitempty"`
}

// Config tunes a sweep. Only Workers affects wall clock; every other
// field changes which cases are enumerated, never their order.
type Config struct {
	// Policies to verify (default: none, hp, avp, nip).
	Policies []string
	// Protection is the driven-deflection (switch, neighbour) pair set
	// installed on every route (hops landing on a route's own path are
	// filtered per route, as the controller does on reroute).
	Protection [][2]string
	// AutoProtect plans protection per destination instead of using a
	// hand-listed pair set: the sweep's controller runs with
	// controller.WithAutoProtection, so every route (and every
	// re-encode) gets a complete protection set rooted at its own
	// destination core. Mutually exclusive with Protection.
	AutoProtect bool
	// ProtectionLabel names the protection set in the report ("none",
	// "partial", "full", "auto", ...).
	ProtectionLabel string
	// Pairs samples this many distinct two-link failure pairs on top
	// of the exhaustive single-failure sweep (0: singles only).
	Pairs int
	// PairSeed seeds the pair sampler; the same seed always selects
	// the same pairs.
	PairSeed int64
	// Workers bounds the case-analysis pool (0: one per CPU).
	Workers int
	// Registry receives the kar_verify_* counters (nil: private).
	Registry *telemetry.Registry
	// Progress, when set, is called after every analyzed case with the
	// running completion count and the total. Calls come from worker
	// goroutines concurrently and in no deterministic order — it is a
	// liveness channel (the serve daemon streams it), never an input to
	// the report, which stays byte-identical with or without it.
	Progress func(done, total int)
}

// RouteScore aggregates every case of one (route, policy).
type RouteScore struct {
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Policy string `json:"policy"`

	// Single-failure census. Singles counts the connected cases;
	// SurviveFraction = Survived/Singles (1 when no case applies).
	Singles         int     `json:"single_failures"`
	Survived        int     `json:"survived"`
	Degraded        int     `json:"degraded"`
	Lost            int     `json:"lost"`
	Disconnected    int     `json:"disconnected"`
	SurviveFraction float64 `json:"survive_fraction"`

	// Worst connected single-failure case by delivery probability, and
	// worst stretch among cases that can deliver.
	WorstPDeliver        float64 `json:"worst_p_deliver"`
	WorstPDeliverFailure string  `json:"worst_p_deliver_failure,omitempty"`
	WorstStretch         float64 `json:"worst_stretch"`
	WorstStretchFailure  string  `json:"worst_stretch_failure,omitempty"`

	// Sampled two-link failure census (when Config.Pairs > 0).
	PairCases    int `json:"pair_cases,omitempty"`
	PairSurvived int `json:"pair_survived,omitempty"`
}

// LinkImpact is one link's blast radius: how many connected
// (route, policy) single-failure cases its failure degrades or kills.
type LinkImpact struct {
	Link        string  `json:"link"`
	Affected    int     `json:"affected"`
	MinPDeliver float64 `json:"min_p_deliver"`
}

// PolicyTotal aggregates one policy across every route: the k=1
// (exhaustive single-failure) and k=2 (sampled failure-pair) survival
// census the per-policy comparison reads off directly.
type PolicyTotal struct {
	Policy string `json:"policy"`

	// k=1: connected single-failure cases summed over all routes.
	Singles         int     `json:"single_failures"`
	Survived        int     `json:"survived"`
	SurviveFraction float64 `json:"survive_fraction"`

	// k=2: connected sampled-pair cases (when Config.Pairs > 0).
	PairCases           int     `json:"pair_cases,omitempty"`
	PairSurvived        int     `json:"pair_survived,omitempty"`
	PairSurviveFraction float64 `json:"pair_survive_fraction,omitempty"`
}

// Report is the sweep's structured outcome. Scores are ordered by
// (src, dst) then by the configured policy order; Impacts by
// descending blast radius (link name breaking ties) — deterministic
// regardless of worker count.
type Report struct {
	Topology   string   `json:"topology"`
	Protection string   `json:"protection"`
	Policies   []string `json:"policies"`
	Routes     int      `json:"routes"`
	Links      int      `json:"links"`
	PairsDrawn int      `json:"pairs_drawn,omitempty"`
	Cases      int      `json:"cases"`

	Scores  []RouteScore  `json:"scores"`
	Impacts []LinkImpact  `json:"impacts,omitempty"`
	Totals  []PolicyTotal `json:"policy_totals"`
}

// Total returns the aggregate row for policy, if present.
func (r *Report) Total(policy string) (*PolicyTotal, bool) {
	for i := range r.Totals {
		if r.Totals[i].Policy == policy {
			return &r.Totals[i], true
		}
	}
	return nil, false
}

// Score returns the score row for (src, dst, policy), if present.
func (r *Report) Score(src, dst, policy string) (*RouteScore, bool) {
	for i := range r.Scores {
		s := &r.Scores[i]
		if s.Src == src && s.Dst == dst && s.Policy == policy {
			return s, true
		}
	}
	return nil, false
}

// MinSurviveFraction returns the smallest single-failure survive
// fraction across all scores, with the offending row.
func (r *Report) MinSurviveFraction() (float64, *RouteScore) {
	min, idx := 2.0, -1
	for i := range r.Scores {
		if r.Scores[i].SurviveFraction < min {
			min, idx = r.Scores[i].SurviveFraction, i
		}
	}
	if idx < 0 {
		return 1, nil
	}
	return min, &r.Scores[idx]
}

// failure is one enumerated failure set.
type failure struct {
	links []*topology.Link
	name  string
	pair  bool
}

// caseResult is one case's computed verdict.
type caseResult struct {
	outcome  Outcome
	pDeliver float64
	stretch  float64
	err      error
}

// Sweep runs the exhaustive failure sweep over g for the given routes.
// It builds its own controller (routes installed in deterministic
// order, every re-encode pair pre-warmed) so the parallel case
// analyses only ever read shared state.
func Sweep(g *topology.Graph, routes []RouteSpec, cfg Config) (*Report, error) {
	return SweepContext(context.Background(), g, routes, cfg)
}

// SweepContext is Sweep under a cancellation context: when ctx is
// cancelled, every worker stops at its next case boundary, the pool
// drains, and ctx.Err() is returned with no partial report — a
// cancelled sweep leaves no goroutines behind. A nil ctx means
// context.Background().
func SweepContext(ctx context.Context, g *topology.Graph, routes []RouteSpec, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(routes) == 0 {
		return nil, errors.New("resilience: no routes to verify")
	}
	policies := cfg.Policies
	if len(policies) == 0 {
		policies = []string{"none", "hp", "avp", "nip"}
	}
	for _, p := range policies {
		switch p {
		case "none", "hp", "avp", "nip", "dtree":
		default:
			return nil, fmt.Errorf("resilience: %q: %w", p, analysis.ErrPolicyUnsupported)
		}
	}
	if cfg.AutoProtect && len(cfg.Protection) > 0 {
		return nil, errors.New("resilience: AutoProtect and an explicit Protection set are mutually exclusive")
	}

	routes = append([]RouteSpec(nil), routes...)
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].Src != routes[j].Src {
			return routes[i].Src < routes[j].Src
		}
		return routes[i].Dst < routes[j].Dst
	})
	for i := 1; i < len(routes); i++ {
		if routes[i].Src == routes[i-1].Src && routes[i].Dst == routes[i-1].Dst {
			return nil, fmt.Errorf("resilience: duplicate route %s->%s", routes[i].Src, routes[i].Dst)
		}
	}

	ctrl, ingress, err := buildController(g, routes, cfg.Protection, cfg.AutoProtect)
	if err != nil {
		return nil, err
	}

	failures, pairsDrawn := enumerateFailures(g, cfg.Pairs, cfg.PairSeed)

	// Flatten (route, policy, failure) into an indexed job list; the
	// index is the only thing workers share.
	type job struct{ r, p, f int }
	jobs := make([]job, 0, len(routes)*len(policies)*len(failures))
	for r := range routes {
		for p := range policies {
			for f := range failures {
				jobs = append(jobs, job{r, p, f})
			}
		}
	}
	results := make([]caseResult, len(jobs))

	compute := func(i int) {
		j := jobs[i]
		rt, pol, fl := routes[j.r], policies[j.p], failures[j.f]
		failed := make(map[*topology.Link]bool, len(fl.links))
		for _, l := range fl.links {
			failed[l] = true
		}
		if !connected(g, rt.Src, rt.Dst, failed) {
			results[i] = caseResult{outcome: Disconnected}
			return
		}
		if failed[ingress[j.r]] {
			// The ingress edge's programmed port feeds a dead link: the
			// packet never reaches the first core, under any policy.
			results[i] = caseResult{outcome: Lost}
			return
		}
		var res analysis.Result
		var caseErr error
		switch pol {
		case "none", "dtree":
			// Deterministic policies score by direct walk — exact, and
			// far cheaper than expanding and solving the chain.
			res, caseErr = walkDeterministic(ctrl, pol, rt.Src, rt.Dst, failed)
		default:
			var a *analysis.Analyzer
			a, caseErr = analysis.New(ctrl, pol, fl.links)
			if caseErr == nil {
				res, caseErr = a.Analyze(rt.Src, rt.Dst)
			}
		}
		if caseErr != nil {
			results[i] = caseResult{err: fmt.Errorf("resilience: %s->%s policy=%s failure=%s: %w",
				rt.Src, rt.Dst, pol, fl.name, caseErr)}
			return
		}
		cr := caseResult{pDeliver: res.PDeliver, stretch: res.Stretch()}
		switch {
		case res.PDeliver >= 1-surviveEps:
			cr.outcome = Survived
		case res.PDeliver <= surviveEps:
			cr.outcome = Lost
		default:
			cr.outcome = Degraded
		}
		results[i] = cr
	}

	var done atomic.Int64
	progress := func() {
		if cfg.Progress != nil {
			cfg.Progress(int(done.Add(1)), len(jobs))
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			if ctx.Err() != nil {
				break
			}
			compute(i)
			progress()
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					compute(i)
					progress()
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Sequential merge: scores, impacts and telemetry in job order.
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	bindHelp(reg)
	reg.Counter("kar_verify_sweeps_total").Inc()

	scores := make([]RouteScore, len(routes)*len(policies))
	for r := range routes {
		for p := range policies {
			scores[r*len(policies)+p] = RouteScore{
				Src: routes[r].Src, Dst: routes[r].Dst, Policy: policies[p],
				WorstPDeliver: 1,
			}
		}
	}
	impact := make(map[int]*LinkImpact) // failure index (singles) -> impact
	var errs []error
	for i, j := range jobs {
		res := results[i]
		if res.err != nil {
			errs = append(errs, res.err)
			continue
		}
		pol, fl := policies[j.p], failures[j.f]
		sc := &scores[j.r*len(policies)+j.p]
		reg.Counter("kar_verify_cases_total", "policy", pol).Inc()
		switch res.outcome {
		case Disconnected:
			reg.Counter("kar_verify_disconnected_total", "policy", pol).Inc()
			if !fl.pair {
				sc.Disconnected++
			}
			continue
		case Survived:
			reg.Counter("kar_verify_survived_total", "policy", pol).Inc()
		case Degraded:
			reg.Counter("kar_verify_degraded_total", "policy", pol).Inc()
		case Lost:
			reg.Counter("kar_verify_lost_total", "policy", pol).Inc()
		}
		if fl.pair {
			sc.PairCases++
			if res.outcome == Survived {
				sc.PairSurvived++
			}
			continue
		}
		sc.Singles++
		switch res.outcome {
		case Survived:
			sc.Survived++
		case Degraded:
			sc.Degraded++
		case Lost:
			sc.Lost++
		}
		if res.pDeliver < sc.WorstPDeliver {
			sc.WorstPDeliver = res.pDeliver
			sc.WorstPDeliverFailure = fl.name
		}
		if res.pDeliver > surviveEps && res.stretch > sc.WorstStretch {
			sc.WorstStretch = res.stretch
			sc.WorstStretchFailure = fl.name
		}
		if res.outcome != Survived {
			im := impact[j.f]
			if im == nil {
				im = &LinkImpact{Link: fl.name, MinPDeliver: 1}
				impact[j.f] = im
			}
			im.Affected++
			if res.pDeliver < im.MinPDeliver {
				im.MinPDeliver = res.pDeliver
			}
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	for i := range scores {
		sc := &scores[i]
		if sc.Singles == 0 {
			sc.SurviveFraction = 1
		} else {
			sc.SurviveFraction = float64(sc.Survived) / float64(sc.Singles)
		}
	}
	totals := make([]PolicyTotal, len(policies))
	for p := range policies {
		totals[p].Policy = policies[p]
		for r := range routes {
			sc := &scores[r*len(policies)+p]
			totals[p].Singles += sc.Singles
			totals[p].Survived += sc.Survived
			totals[p].PairCases += sc.PairCases
			totals[p].PairSurvived += sc.PairSurvived
		}
		t := &totals[p]
		if t.Singles == 0 {
			t.SurviveFraction = 1
		} else {
			t.SurviveFraction = float64(t.Survived) / float64(t.Singles)
		}
		if t.PairCases > 0 {
			t.PairSurviveFraction = float64(t.PairSurvived) / float64(t.PairCases)
		}
	}
	impacts := make([]LinkImpact, 0, len(impact))
	for _, im := range impact {
		impacts = append(impacts, *im)
	}
	sort.Slice(impacts, func(i, j int) bool {
		if impacts[i].Affected != impacts[j].Affected {
			return impacts[i].Affected > impacts[j].Affected
		}
		return impacts[i].Link < impacts[j].Link
	})

	return &Report{
		Topology:   g.Name(),
		Protection: cfg.ProtectionLabel,
		Policies:   policies,
		Routes:     len(routes),
		Links:      len(g.Links()),
		PairsDrawn: pairsDrawn,
		Cases:      len(jobs),
		Scores:     scores,
		Impacts:    impacts,
		Totals:     totals,
	}, nil
}

func bindHelp(reg *telemetry.Registry) {
	reg.Help("kar_verify_sweeps_total", "Resilience sweeps executed.")
	reg.Help("kar_verify_cases_total", "Sweep cases analyzed, by policy.")
	reg.Help("kar_verify_survived_total", "Cases with certain delivery, by policy.")
	reg.Help("kar_verify_degraded_total", "Cases with uncertain delivery, by policy.")
	reg.Help("kar_verify_lost_total", "Cases with zero delivery probability, by policy.")
	reg.Help("kar_verify_disconnected_total", "Cases where the failure disconnects src from dst, by policy.")
}

// buildController installs every route (deterministic order, per-route
// protection filtering) on a fresh non-reactive controller and
// pre-warms the re-encode cache for every ordered edge pair, so the
// concurrent case analyses only ever hit the controller's read-only
// cache path. Returns the per-route ingress link alongside. With auto
// set, the controller plans per-destination protection itself and the
// pair set must be empty.
func buildController(g *topology.Graph, routes []RouteSpec, protection [][2]string, auto bool) (*controller.Controller, []*topology.Link, error) {
	hops, err := core.HopsFromPairs(g, protection)
	if err != nil {
		return nil, nil, fmt.Errorf("resilience: protection: %w", err)
	}
	var opts []controller.Option
	if auto {
		opts = append(opts, controller.WithAutoProtection(core.PlanOptions{}))
	}
	ctrl := controller.New(g, opts...)
	ingress := make([]*topology.Link, len(routes))
	for i, rt := range routes {
		names := rt.Path
		if len(names) == 0 {
			path, err := topology.ShortestPath(g, rt.Src, rt.Dst, topology.HopWeight)
			if err != nil {
				return nil, nil, fmt.Errorf("resilience: route %s->%s: %w", rt.Src, rt.Dst, err)
			}
			names = make([]string, len(path.Nodes))
			for k, n := range path.Nodes {
				names[k] = n.Name()
			}
		}
		onPath := make(map[string]bool, len(names))
		for _, n := range names {
			onPath[n] = true
		}
		filtered := make([]core.Hop, 0, len(hops))
		for _, h := range hops {
			if !onPath[h.Switch.Name()] {
				filtered = append(filtered, h)
			}
		}
		route, err := ctrl.InstallRouteOnPath(names, filtered)
		if err != nil {
			return nil, nil, fmt.Errorf("resilience: route %s->%s: %w", rt.Src, rt.Dst, err)
		}
		l, ok := g.LinkBetween(names[0], names[1])
		if !ok {
			return nil, nil, fmt.Errorf("resilience: route %s->%s: no ingress link %s-%s", rt.Src, rt.Dst, names[0], names[1])
		}
		ingress[i] = l
		_ = route
	}
	// Pre-warm: re-encoding ignores failure sets (the controller is
	// non-reactive), so warming under the empty set caches exactly what
	// the analyses will look up. Unreachable pairs fail here and keep
	// failing identically (without installing) during analysis.
	edges := g.EdgeNodes()
	for _, a := range edges {
		for _, b := range edges {
			if a != b {
				_, _, _ = ctrl.ReencodeRoute(a.Name(), b.Name())
			}
		}
	}
	return ctrl, ingress, nil
}

// enumerateFailures lists every single-link failure in topology
// insertion order, then draws up to pairs distinct unordered two-link
// samples from a rand seeded with pairSeed.
func enumerateFailures(g *topology.Graph, pairs int, pairSeed int64) ([]failure, int) {
	links := g.Links()
	out := make([]failure, 0, len(links)+pairs)
	for _, l := range links {
		out = append(out, failure{links: []*topology.Link{l}, name: l.Name()})
	}
	if pairs <= 0 || len(links) < 2 {
		return out, 0
	}
	max := len(links) * (len(links) - 1) / 2
	want := pairs
	if want > max {
		want = max
	}
	rng := rand.New(rand.NewSource(pairSeed))
	seen := make(map[[2]int]bool, want)
	drawn := 0
	for drawn < want {
		i, j := rng.Intn(len(links)), rng.Intn(len(links))
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		out = append(out, failure{
			links: []*topology.Link{links[i], links[j]},
			name:  links[i].Name() + "+" + links[j].Name(),
			pair:  true,
		})
		drawn++
	}
	return out, drawn
}

// AllPairRoutes returns a RouteSpec for every ordered edge pair of g —
// the default route set of `karsim -verify` and the serve daemon's
// /v1/verify endpoint.
func AllPairRoutes(g *topology.Graph) ([]RouteSpec, error) {
	var routes []RouteSpec
	for _, a := range g.EdgeNodes() {
		for _, b := range g.EdgeNodes() {
			if a != b {
				routes = append(routes, RouteSpec{Src: a.Name(), Dst: b.Name()})
			}
		}
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("resilience: topology %s has fewer than two edge nodes", g.Name())
	}
	return routes, nil
}

// ParseRoutes parses a "src:dst[,src:dst...]" route list (the -verify
// flag grammar). Node names are validated later, when the sweep
// installs the routes.
func ParseRoutes(spec string) ([]RouteSpec, error) {
	var routes []RouteSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		src, dst, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("resilience: route %q: want src:dst", part)
		}
		routes = append(routes, RouteSpec{Src: src, Dst: dst})
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("resilience: %q names no routes", spec)
	}
	return routes, nil
}

// connected reports whether dst is reachable from src over non-failed
// links.
func connected(g *topology.Graph, src, dst string, failed map[*topology.Link]bool) bool {
	s, ok := g.Node(src)
	if !ok {
		return false
	}
	d, ok := g.Node(dst)
	if !ok {
		return false
	}
	visited := map[*topology.Node]bool{s: true}
	stack := []*topology.Node{s}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == d {
			return true
		}
		for i := 0; i < n.Degree(); i++ {
			l, ok := n.PortLink(i)
			if !ok || failed[l] {
				continue
			}
			o := l.Other(n)
			if !visited[o] {
				visited[o] = true
				stack = append(stack, o)
			}
		}
	}
	return false
}

// walkView adapts one topology node plus a failure set to
// deflect.SwitchView, so the deterministic walk runs the very same
// policy code the data plane does.
type walkView struct {
	node   *topology.Node
	failed map[*topology.Link]bool
}

func (v walkView) SwitchID() uint64 { return v.node.ID() }
func (v walkView) Forward(r rns.RouteID) int {
	return core.Forward(r, v.node.ID())
}
func (v walkView) NumPorts() int { return v.node.PortSpan() }
func (v walkView) PortUp(i int) bool {
	l, ok := v.node.PortLink(i)
	return ok && !v.failed[l]
}
func (v walkView) EdgePort(i int) bool {
	l, ok := v.node.PortLink(i)
	return ok && l.Other(v.node).Kind() == topology.KindEdge
}

// walkDeterministic follows the installed route under a deterministic
// policy ("none" or "dtree"): decide at every core exactly as the data
// plane's switch would (the dtree walk literally calls
// deflect.DTree.Decide — no RNG is ever consumed), drop on a dead or
// invalid port, re-encode at wrong edges with a TTL refresh, deliver
// at dst. PDeliver is 0 or 1 by construction; a TTL death counts as a
// loss, exactly like the simulator's ttl_expired drop.
func walkDeterministic(ctrl *controller.Controller, pol, src, dst string, failed map[*topology.Link]bool) (analysis.Result, error) {
	route, ok := ctrl.Route(src, dst)
	if !ok {
		return analysis.Result{}, fmt.Errorf("no installed route %s->%s", src, dst)
	}
	policy, ok := deflect.ByName(pol)
	if !ok {
		return analysis.Result{}, fmt.Errorf("%q: %w", pol, analysis.ErrPolicyUnsupported)
	}
	res := analysis.Result{BaselineHops: route.Path.Hops(), PDrop: 1}
	id := route.ID
	node := route.Path.Nodes[1]
	ingress, ok := node.PortToward(route.Path.Nodes[0].Name())
	if !ok {
		return analysis.Result{}, fmt.Errorf("%s has no port toward %s", node, route.Path.Nodes[0])
	}
	inPort := ingress
	deflected := false
	hops := 1 // the ingress edge→first-node traversal
	// Cycle guard: the walk is deterministic, so revisiting a full
	// (route ID, node, inPort, deflected) state proves an infinite
	// loop. Within one encoding the TTL already bounds it; the guard
	// additionally bounds livelock across wrong-edge re-encodes, which
	// refresh the TTL.
	type walkState struct {
		id        string
		node      *topology.Node
		inPort    int
		deflected bool
	}
	seen := make(map[walkState]bool)
	for ttl := packet.DefaultTTL; ttl > 0; ttl-- {
		if node.Kind() == topology.KindEdge {
			if node.Name() == dst {
				res.PDeliver, res.PDrop = 1, 0
				res.ExpectedHops = float64(hops)
				return res, nil
			}
			if s := (walkState{id: id.String(), node: node, inPort: inPort}); seen[s] {
				return res, nil // deterministic re-encode livelock
			} else {
				seen[s] = true
			}
			// Misdelivery: the controller re-encodes from this edge
			// (cache pre-warmed; a miss means the pair is unreachable)
			// and the packet leaves with a fresh TTL.
			nid, port, err := ctrl.ReencodeRoute(node.Name(), dst)
			if err != nil {
				return res, nil
			}
			l, ok := node.PortLink(port)
			if !ok || failed[l] {
				return res, nil
			}
			id = nid
			next := l.Other(node)
			inPort = l.PortOf(next)
			node = next
			deflected = false
			hops++
			ttl = packet.DefaultTTL
			continue
		}
		d := policy.Decide(walkView{node: node, failed: failed}, id, inPort, deflected, nil)
		if d.Drop {
			return res, nil
		}
		deflected = deflected || d.Deflected
		l, ok := node.PortLink(d.Port)
		if !ok || failed[l] {
			return res, nil
		}
		next := l.Other(node)
		inPort = l.PortOf(next)
		node = next
		hops++
	}
	return res, nil // TTL exhausted: a deterministic loop
}
