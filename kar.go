// Package kar is a from-scratch implementation of KAR
// (Key-for-Any-Route), the resilient intra-domain routing system of
// Gomes et al. (IEEE/IFIP DSN-W 2016), together with the complete
// simulation substrate its evaluation requires.
//
// KAR encodes an entire forwarding path — and its protection detours —
// into a single integer route ID using the Residue Number System:
// switch s forwards a packet carrying route ID R out of port R mod s.
// Core switches keep no forwarding state; resilience comes from
// deflection routing guided by extra residues embedded in the same
// route ID ("driven deflections").
//
// # Layout
//
// The facade re-exports the library's main entry points; the full API
// lives in the internal packages:
//
//   - rns       — CRT route-ID arithmetic (§2.2–2.3 of the paper)
//   - coprime   — switch-ID allocation
//   - topology  — graph model + the paper's three topologies
//   - core      — route encoding and protection planning
//   - deflect   — HP / AVP / NIP deflection policies (§2.1)
//   - packet    — packets and the KAR shim header codec
//   - simnet    — deterministic discrete-event network simulator
//   - kswitch   — the KAR core switch
//   - edge      — edge nodes (encap/decap, misdelivery re-encode)
//   - controller— routing, protection, re-encoding
//   - tcpsim    — TCP Reno/NewReno endpoints (the paper's iperf)
//   - udpsim    — CBR flows and delivery/stretch metrics
//   - trace     — packet capture (the paper's tcpdump)
//   - analysis  — closed-form Markov analysis of deflection walks
//   - tablefwd  — stateful fast-failover baseline (Table 2)
//   - measure   — statistics, confidence intervals, tables
//   - experiment— one named experiment per table/figure of §3
//
// # Quickstart
//
// Reproduce the paper's Fig. 1 numbers:
//
//	sys, _ := kar.NewRNS([]uint64{4, 7, 11})
//	r, _ := sys.Encode([]uint64{0, 2, 0}) // → route ID 44
//
// Build the six-node example network, fail a link, and watch driven
// deflection keep packets flowing — see examples/quickstart.
package kar

import (
	"repro/internal/analysis"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/deflect"
	"repro/internal/edge"
	"repro/internal/experiment"
	"repro/internal/kswitch"
	"repro/internal/measure"
	"repro/internal/packet"
	"repro/internal/rns"
	"repro/internal/simnet"
	"repro/internal/tcpsim"
	"repro/internal/topology"
	"repro/internal/udpsim"
)

// Core routing types.
type (
	// RouteID is the integer carried in the KAR packet header.
	RouteID = rns.RouteID
	// RNS is a fixed basis of pairwise-coprime switch IDs.
	RNS = rns.System
	// Route is an encoded route: path + protection + route ID.
	Route = core.Route
	// Hop is one encoded (switch, output port) pair.
	Hop = core.Hop
	// Graph is a KAR topology.
	Graph = topology.Graph
	// Node is a switch or edge node.
	Node = topology.Node
	// Link is an undirected network link.
	Link = topology.Link
	// Path is a node sequence.
	Path = topology.Path
	// Policy is a deflection technique (§2.1).
	Policy = deflect.Policy
	// Packet is one simulated packet.
	Packet = packet.Packet
	// Header is the KAR shim header wire format.
	Header = packet.Header
	// FlowID identifies a unidirectional transport flow.
	FlowID = packet.FlowID
)

// Simulation types.
type (
	// Network is a live simulated network over a Graph.
	Network = simnet.Network
	// Scheduler is the virtual-time event loop.
	Scheduler = simnet.Scheduler
	// Controller is the KAR routing brain.
	Controller = controller.Controller
	// Switch is a KAR core switch bound to a simulated node.
	Switch = kswitch.Switch
	// EdgeNode attaches/removes route IDs at the network boundary.
	EdgeNode = edge.Edge
	// World is a fully wired KAR network (switches + edges +
	// controller over a simulator).
	World = experiment.World
	// TCPSender and TCPReceiver are iperf-style TCP endpoints.
	TCPSender   = tcpsim.Sender
	TCPReceiver = tcpsim.Receiver
	// TCPConfig tunes the transport.
	TCPConfig = tcpsim.Config
	// CBRSender and CBRReceiver are constant-bit-rate endpoints.
	CBRSender   = udpsim.Sender
	CBRReceiver = udpsim.Receiver
	// WalkAnalyzer computes closed-form deflection-walk properties.
	WalkAnalyzer = analysis.Analyzer
	// Table is a renderable result table.
	Table = measure.Table
	// Summary is a sample summary with a 95% confidence interval.
	Summary = measure.Summary
)

// NewRNS validates a pairwise-coprime basis and returns its RNS
// system (paper Eq. 1–9).
func NewRNS(moduli []uint64) (*RNS, error) { return rns.NewSystem(moduli) }

// EncodeRoute encodes an edge-to-edge path plus protection hops into
// a route ID.
func EncodeRoute(path Path, protection []Hop) (*Route, error) {
	return core.EncodeRoute(path, protection)
}

// Forward is the entire KAR core data plane: the output port of a
// switch with the given ID for a packet carrying route ID r.
func Forward(r RouteID, switchID uint64) int { return core.Forward(r, switchID) }

// PlanProtection computes driven-deflection hops for a path under a
// route-ID bit budget (§2.3); budget 0 means complete protection.
func PlanProtection(g *Graph, path Path, maxBits int) ([]Hop, error) {
	return core.PlanProtection(g, path, core.PlanOptions{MaxBits: maxBits})
}

// PolicyByName resolves "none", "hp", "avp" or "nip".
func PolicyByName(name string) (Policy, bool) { return deflect.ByName(name) }

// ShortestPath runs hop-count Dijkstra between two named nodes.
func ShortestPath(g *Graph, src, dst string) (Path, error) {
	return topology.ShortestPath(g, src, dst, nil)
}

// Topologies evaluated in the paper.
var (
	// Fig1 builds the six-node worked example (R = 44 / 660).
	Fig1 = topology.Fig1
	// Net15 builds the 15-node network of Fig. 2 / Table 1.
	Net15 = topology.Net15
	// RNP28 builds the 28-node Brazilian backbone of Fig. 6.
	RNP28 = topology.RNP28
	// RNP28Fig8 is the Fig. 8 host placement of the same backbone.
	RNP28Fig8 = topology.RNP28Fig8
)

// NewGraph starts an empty topology.
func NewGraph(name string) *Graph { return topology.New(name) }

// The paper's named protection sets, as (switch → neighbour) pairs
// accepted by World.InstallRoute.
var (
	// Net15PartialProtection covers the SW11→SW19→SW27→SW29 corridor.
	Net15PartialProtection = topology.Net15PartialProtection
	// Net15FullProtection additionally drives the 17/37/47 cluster.
	Net15FullProtection = topology.Net15FullProtection
	// RNP28PartialProtection is the Fig. 6 segment set.
	RNP28PartialProtection = topology.RNP28PartialProtection
	// RNP28Fig8Protection is the Fig. 8 retry-loop protection.
	RNP28Fig8Protection = topology.RNP28Fig8Protection
)

// NewWorld wires a complete KAR network over g: one switch per core
// (running the policy with seeded RNGs), one edge node per edge, and
// a controller in the paper's ignore-failures mode.
func NewWorld(g *Graph, policy Policy, seed int64) *World {
	return experiment.NewWorld(g, policy, seed)
}

// NewTCPFlow attaches an iperf-style TCP flow between two edges of a
// world. Routes for both directions must already be installed.
func NewTCPFlow(w *World, flow FlowID, cfg TCPConfig) (*TCPSender, *TCPReceiver) {
	return tcpsim.NewFlow(w.Net, w.Edges[flow.Src], w.Edges[flow.Dst], flow, cfg)
}

// NewCBRFlow attaches a constant-bit-rate flow between two edges.
func NewCBRFlow(w *World, flow FlowID, cfg udpsim.Config) (*CBRSender, *CBRReceiver) {
	return udpsim.NewFlow(w.Net, w.Edges[flow.Src], w.Edges[flow.Dst], flow, cfg)
}

// Experiment entry points — one per table/figure of the paper's §3.
var (
	// Table1 regenerates the encoding-size table.
	Table1 = experiment.Table1
	// Fig4 regenerates the failure-timeline figure.
	Fig4 = experiment.Fig4
	// Fig5 regenerates the protection × deflection × location sweep.
	Fig5 = experiment.Fig5
	// Fig7 regenerates the RNP failure sweep.
	Fig7 = experiment.Fig7
	// Fig8 regenerates the redundant-path worst case.
	Fig8 = experiment.Fig8
	// Table2Qualitative reproduces the paper's comparison table.
	Table2Qualitative = experiment.Table2Qualitative
	// Table2Quantitative measures the stateless-vs-stateful contrast.
	Table2Quantitative = experiment.Table2Quantitative
	// Coverage runs the closed-form deflection-walk analysis.
	Coverage = experiment.Coverage
)
